//! Branch & bound for mixed-integer programs.
//!
//! Best-first search on LP-relaxation bounds with two-tier variable
//! selection — reliability pseudocost branching falling back to parallel
//! strong branching ([`crate::BranchRule`]) — plunging dives, and an
//! optional multi-threaded node pool.
//!
//! # Branching
//!
//! At every fractional node the search picks the branching variable with
//! the configured [`crate::BranchRule`]:
//!
//! * **MostFractional** — the variable whose LP value is closest to 0.5
//!   (ties to the lowest index); no extra LPs.
//! * **Pseudocost** (default) — per-variable up/down *pseudocosts* (mean
//!   per-unit LP-bound degradation, learned from every child LP the search
//!   solves) rank the candidates by the product of their estimated
//!   degradations. Candidates whose pseudocosts are not yet reliable
//!   (`pseudocost_reliability`), or all of them near the root
//!   (`strong_branch_depth`), are *strong branched*: both child LPs are
//!   solved — concurrently via `parallel::map_chunks`, warm-started from
//!   the node basis — and scored by actual degradation. The winner's probe
//!   LPs are reused as the real children, so no LP is ever solved twice;
//!   probes are not search nodes and never appear in the certificate.
//!
//! The pseudocost table is shared across workers under one mutex and
//! updated in deterministic within-node order (down before up, ascending
//! variable index), so the serial search evolves it reproducibly.
//!
//! # Search architecture
//!
//! One shared [`BinaryHeap`] of open nodes is drained by `N` workers
//! (`N = SolveOptions::threads`; the default of 1 runs the identical code
//! on the calling thread with no synchronization contention). Each worker
//! pops the globally best-bound node and *plunges*: it dives toward an
//! integral leaf, always following the better-bound child and parking the
//! sibling back on the shared heap, where idle workers steal it. The
//! incumbent is shared: updates take a mutex, while pruning reads a
//! lock-free atomic copy of the incumbent objective (stale reads are safe —
//! they only make pruning conservative, never wrong).
//!
//! Child LPs are warm-started from the parent's simplex basis and repaired
//! with dual-simplex pivots (see [`crate::simplex`]); a cold two-phase
//! solve is the automatic fallback, so warm starts never change results.
//!
//! # Determinism
//!
//! Ties are broken identically in serial and parallel mode:
//!
//! * **node order** — nodes with equal LP bounds pop in creation order
//!   (each node carries a sequence number); with one thread the search is
//!   therefore fully reproducible, node counts included,
//! * **incumbent** — a new integral solution replaces the incumbent only
//!   when its objective is strictly better *or* equal with lexicographically
//!   smaller variable values (in variable creation order).
//!
//! With multiple threads the *explored node set* can vary between runs
//! (incumbents arrive at different times, changing what gets pruned), but
//! every run returns the same proven-optimal objective. See
//! `docs/SOLVER.md` for the full guarantee.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use insitu_types::{CutProof, NodeCert, NodeOutcome, SearchCertificate};

use crate::cuts::{self, CutKey, NodeCut};
use crate::error::SolveError;
use crate::model::{Model, Sense};
use crate::options::{BranchRule, CutPolicy, SolveOptions};
use crate::simplex::{solve_lp_relaxation_warm, Basis, LpPoint};
use crate::solution::Solution;
use crate::stats::{CutStats, IncumbentEvent, SolveStats};
use parallel::{map_chunks, Exec};

/// A live search node: bound overrides relative to the original model plus
/// the LP optimum of the node.
#[derive(Debug, Clone)]
struct Node {
    /// `(var, lower, upper)` overrides accumulated from the root.
    overrides: Vec<(usize, f64, f64)>,
    /// LP relaxation optimum of this node, in model-variable space.
    values: Vec<f64>,
    /// LP relaxation objective (model sense).
    bound: f64,
    /// Sense-adjusted priority (larger = explored first).
    key: f64,
    /// Creation sequence number; equal-key nodes pop in creation order.
    /// Doubles as the node id in the pruning certificate.
    seq: u64,
    /// Certificate parent link (`None` for the root).
    parent: Option<u64>,
    /// Final simplex basis of this node's LP, used to warm-start children.
    basis: Option<Basis>,
    /// Node-local cover cuts inherited from ancestors
    /// ([`CutPolicy::Full`] only; empty otherwise). Shared down the
    /// subtree — children clone the `Arc`, not the rows.
    cuts: Arc<Vec<NodeCut>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.key.partial_cmp(&other.key) {
            Some(Ordering::Equal) | None => other.seq.cmp(&self.seq), // FIFO on ties
            Some(o) => o,
        }
    }
}

fn apply_overrides(model: &Model, overrides: &[(usize, f64, f64)]) -> Model {
    let mut m = model.clone();
    for &(v, lo, hi) in overrides {
        m.vars[v].lower = m.vars[v].lower.max(lo);
        m.vars[v].upper = m.vars[v].upper.min(hi);
    }
    m
}

/// The model a child LP actually solves: the frozen root model (which
/// already carries the root cut pool) with the node's bound overrides and
/// its inherited node-local cut rows appended.
fn child_model(model: &Model, overrides: &[(usize, f64, f64)], cuts: &[NodeCut]) -> Model {
    let mut m = apply_overrides(model, overrides);
    m.cons.extend(cuts.iter().map(|c| c.con.clone()));
    m
}

/// One fractional integer variable of a node's LP point.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    var: usize,
    value: f64,
    /// Fractional part, in `(tol, 1 - tol)`.
    frac: f64,
    /// Distance to 0.5 (smaller = more fractional).
    dist: f64,
}

/// Every fractional integer variable of an LP point, in ascending
/// variable order. Empty means the point is integral.
fn fractional_candidates(model: &Model, values: &[f64], tol: f64) -> Vec<Candidate> {
    let mut out = Vec::new();
    for i in model.integer_vars() {
        let v = values[i];
        let frac = v - v.floor();
        if frac > tol && frac < 1.0 - tol {
            out.push(Candidate {
                var: i,
                value: v,
                frac,
                dist: (frac - 0.5).abs(),
            });
        }
    }
    out
}

/// The historical most-fractional rule: minimum distance to 0.5, ties to
/// the lowest variable index (candidates arrive in ascending order, so
/// strict `<` keeps the first).
fn most_fractional(cands: &[Candidate]) -> Candidate {
    let mut best = cands[0];
    for c in &cands[1..] {
        if c.dist < best.dist {
            best = *c;
        }
    }
    best
}

/// Per-variable branching pseudocosts: mean per-unit LP-bound degradation
/// observed when branching the variable down (toward `floor`) or up
/// (toward `floor + 1`), plus direction-wide totals for the standard
/// global-average fallback on never-branched variables.
///
/// Shared across workers under one mutex; every update batch is applied
/// in deterministic within-node order (down before up, ascending variable
/// index), so the serial search evolves the table reproducibly. In
/// parallel the interleaving of *nodes* may vary — that can change which
/// variable a later node picks (and hence node counts), never the optimum.
#[derive(Debug)]
struct Pseudocosts {
    down_sum: Vec<f64>,
    down_cnt: Vec<u32>,
    up_sum: Vec<f64>,
    up_cnt: Vec<u32>,
    total_down: (f64, u64),
    total_up: (f64, u64),
}

impl Pseudocosts {
    fn new(num_vars: usize) -> Self {
        Pseudocosts {
            down_sum: vec![0.0; num_vars],
            down_cnt: vec![0; num_vars],
            up_sum: vec![0.0; num_vars],
            up_cnt: vec![0; num_vars],
            total_down: (0.0, 0),
            total_up: (0.0, 0),
        }
    }

    /// Records one observed per-unit degradation for a branch direction.
    fn observe(&mut self, var: usize, up: bool, per_unit: f64) {
        if up {
            self.up_sum[var] += per_unit;
            self.up_cnt[var] += 1;
            self.total_up.0 += per_unit;
            self.total_up.1 += 1;
        } else {
            self.down_sum[var] += per_unit;
            self.down_cnt[var] += 1;
            self.total_down.0 += per_unit;
            self.total_down.1 += 1;
        }
    }

    /// A pseudocost is reliable once both directions have been observed
    /// at least `reliability` times (`0` = always reliable).
    fn reliable(&self, var: usize, reliability: usize) -> bool {
        self.down_cnt[var].min(self.up_cnt[var]) as usize >= reliability
    }

    /// `(down, up)` per-unit degradation estimates. An unobserved
    /// direction falls back to the global average of that direction, then
    /// to 1.0 — which reduces the product score to `frac * (1 - frac)`,
    /// i.e. most-fractional ordering, before any history exists.
    fn rates(&self, var: usize) -> (f64, f64) {
        let avg = |t: (f64, u64)| if t.1 == 0 { 1.0 } else { t.0 / t.1 as f64 };
        let down = if self.down_cnt[var] > 0 {
            self.down_sum[var] / self.down_cnt[var] as f64
        } else {
            avg(self.total_down)
        };
        let up = if self.up_cnt[var] > 0 {
            self.up_sum[var] / self.up_cnt[var] as f64
        } else {
            avg(self.total_up)
        };
        (down, up)
    }
}

/// Result of one strong-branch child LP (also the shape a regular child
/// solve is normalized into, so materialization handles both uniformly).
enum Probe {
    /// The branching bounds crossed: the child domain is empty (no LP).
    Empty,
    /// The child LP is infeasible.
    Infeasible,
    /// The child LP optimum, reusable as the real child node.
    Solved(Box<(Solution, LpPoint)>),
    /// A fatal LP error to propagate.
    Fatal(SolveError),
}

/// Solves one strong-branch child LP, warm-started from the node basis,
/// accounting pivots/telemetry exactly like a regular child solve (the
/// chosen candidate's probes become the real children, so nothing is
/// counted twice).
fn probe_side(sh: &Shared<'_>, node: &Node, var: usize, lo: f64, hi: f64) -> Probe {
    let mut overrides = node.overrides.clone();
    overrides.push((var, lo, hi));
    let child = child_model(sh.model, &overrides, &node.cuts);
    if child.vars[var].lower > child.vars[var].upper {
        return Probe::Empty;
    }
    match solve_lp_relaxation_warm(&child, sh.opts, node.basis.as_ref()) {
        Ok((relax, point)) => {
            sh.lp_pivots.fetch_add(relax.iterations, AtOrd::Relaxed);
            sh.absorb_telemetry(&point.telemetry);
            if point.warm {
                sh.warm_started.fetch_add(1, AtOrd::Relaxed);
            }
            Probe::Solved(Box::new((relax, point)))
        }
        Err(SolveError::Infeasible) => Probe::Infeasible,
        Err(e) => Probe::Fatal(e),
    }
}

/// Sense-adjusted LP-bound degradation of a probed child vs. its parent
/// (`>= 0`; fathomed sides count as infinite — branching there closes a
/// whole subtree).
fn probe_degradation(sign: f64, parent_bound: f64, probe: &Probe) -> f64 {
    match probe {
        Probe::Solved(b) => (sign * (parent_bound - b.0.objective)).max(0.0),
        _ => f64::INFINITY,
    }
}

/// Outcome of variable selection at a fractional node: the branching
/// variable plus — when the winner was strong-branched — its two probe
/// results, reused as the real children.
struct BranchChoice {
    var: usize,
    value: f64,
    /// `[down, up]` probes of the chosen candidate, if it was in the
    /// strong set.
    probes: Option<[Probe; 2]>,
}

/// Degradation products compare with this floor so a zero-degradation
/// direction cannot erase the other direction's signal.
const SCORE_EPS: f64 = 1e-6;

/// Picks the branching variable per `opts.branch_rule`. See the module
/// docs for the scheme; score ties break to the most fractional candidate
/// and then the lowest variable index, which keeps the serial search
/// bitwise-reproducible.
fn select_branch(
    sh: &Shared<'_>,
    node: &Node,
    cands: &[Candidate],
) -> Result<BranchChoice, SolveError> {
    let mf = most_fractional(cands);
    if matches!(sh.opts.branch_rule, BranchRule::MostFractional) {
        return Ok(BranchChoice {
            var: mf.var,
            value: mf.value,
            probes: None,
        });
    }

    // --- tier 2: strong-branch the unreliable (or shallow-depth) set ---
    let strong_all = node.overrides.len() < sh.opts.strong_branch_depth;
    let mut strong: Vec<usize> = {
        let pc = sh.pseudo.lock().unwrap();
        (0..cands.len())
            .filter(|&ci| {
                strong_all || !pc.reliable(cands[ci].var, sh.opts.pseudocost_reliability)
            })
            .collect()
    };
    // the most fractional candidates win the probe slots (stable sort
    // keeps ascending variable order on distance ties)...
    strong.sort_by(|&a, &b| cands[a].dist.total_cmp(&cands[b].dist));
    strong.truncate(sh.opts.strong_branch_limit.max(1));
    // ...and probes/updates run in ascending variable order
    strong.sort_unstable();

    let mut probes: Vec<Option<[Probe; 2]>> = (0..cands.len()).map(|_| None).collect();
    if !strong.is_empty() {
        sh.strong_branch_calls.fetch_add(1, AtOrd::Relaxed);
        let exec = Exec::with_threads(sh.opts.effective_threads());
        let (evals, _) = map_chunks(&exec, strong.len(), |k| {
            let c = &cands[strong[k]];
            let floor = c.value.floor();
            [
                probe_side(sh, node, c.var, f64::NEG_INFINITY, floor),
                probe_side(sh, node, c.var, floor + 1.0, f64::INFINITY),
            ]
        });
        let mut lps = 0usize;
        for (k, pair) in evals.into_iter().enumerate() {
            for p in &pair {
                match p {
                    Probe::Fatal(e) => return Err(e.clone()),
                    Probe::Solved(_) | Probe::Infeasible => lps += 1,
                    Probe::Empty => {}
                }
            }
            probes[strong[k]] = Some(pair);
        }
        sh.strong_branch_lps.fetch_add(lps, AtOrd::Relaxed);

        // batch-apply pseudocost observations in deterministic order
        let mut pc = sh.pseudo.lock().unwrap();
        for &ci in &strong {
            let c = &cands[ci];
            let pair = probes[ci].as_ref().expect("probed candidate");
            if let Probe::Solved(b) = &pair[0] {
                let deg = (sh.sign * (node.bound - b.0.objective)).max(0.0);
                pc.observe(c.var, false, deg / c.frac);
            }
            if let Probe::Solved(b) = &pair[1] {
                let deg = (sh.sign * (node.bound - b.0.objective)).max(0.0);
                pc.observe(c.var, true, deg / (1.0 - c.frac));
            }
        }
    }

    // --- tier 1: score everyone (probed by actual degradation, the rest
    // by pseudocost estimate), highest product wins. Ties go to the most
    // fractional candidate, then the lowest variable index: the telescoped
    // scheduling LPs are heavily degenerate (most branchings do not move
    // the bound at all), so whole nodes can tie at the score floor — and
    // falling back to index order there branches on whatever variable was
    // created first, which is far worse than most-fractional.
    let (mut best_ci, mut best_score, mut best_dist) = (0usize, f64::NEG_INFINITY, f64::INFINITY);
    {
        let pc = sh.pseudo.lock().unwrap();
        for (ci, c) in cands.iter().enumerate() {
            let (deg_dn, deg_up) = match &probes[ci] {
                Some(pair) => (
                    probe_degradation(sh.sign, node.bound, &pair[0]),
                    probe_degradation(sh.sign, node.bound, &pair[1]),
                ),
                None => {
                    let (rd, ru) = pc.rates(c.var);
                    (rd * c.frac, ru * (1.0 - c.frac))
                }
            };
            let score = deg_dn.max(SCORE_EPS) * deg_up.max(SCORE_EPS);
            if score > best_score || (score == best_score && c.dist < best_dist) {
                (best_ci, best_score, best_dist) = (ci, score, c.dist);
            }
        }
    }
    if probes[best_ci].is_none() {
        sh.pseudocost_branches.fetch_add(1, AtOrd::Relaxed);
    }
    Ok(BranchChoice {
        var: cands[best_ci].var,
        value: cands[best_ci].value,
        probes: probes.swap_remove(best_ci),
    })
}

/// Rounds the integer variables of an LP point and keeps it if feasible.
fn rounded_candidate(model: &Model, values: &[f64], tol: f64) -> Option<(Vec<f64>, f64)> {
    let mut values = values.to_vec();
    for i in model.integer_vars() {
        values[i] = values[i].round();
    }
    if model.is_feasible(&values, tol * 10.0) {
        let objective = model.objective_value(&values);
        Some((values, objective))
    } else {
        None
    }
}

/// True when a and b compare lexicographically as `a < b`.
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return true;
        }
        if x > y {
            return false;
        }
    }
    false
}

/// The documented incumbent replacement rule: strictly better objective,
/// or exactly equal objective with lexicographically smaller values.
fn improves(model: &Model, objective: f64, values: &[f64], inc: Option<&Solution>) -> bool {
    match inc {
        None => true,
        Some(inc) => {
            model.better(objective, inc.objective)
                || (objective == inc.objective && lex_less(values, &inc.values))
        }
    }
}

/// Open-node pool shared by all workers.
struct Pool {
    heap: BinaryHeap<Node>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Terminate flag: set on completion, node limit, or LP error.
    done: bool,
}

/// All cross-worker state of one solve.
struct Shared<'m> {
    model: &'m Model,
    opts: &'m SolveOptions,
    /// +1 for maximization, -1 for minimization (keys are `sign * obj`).
    sign: f64,
    pool: Mutex<Pool>,
    work: Condvar,
    incumbent: Mutex<Option<Solution>>,
    /// `sign * incumbent.objective` as f64 bits, for lock-free prune reads.
    /// Stale values only make pruning conservative.
    inc_key: AtomicU64,
    nodes: AtomicUsize,
    pruned_bound: AtomicUsize,
    pruned_infeasible: AtomicUsize,
    lp_pivots: AtomicUsize,
    warm_started: AtomicUsize,
    strong_branch_calls: AtomicUsize,
    strong_branch_lps: AtomicUsize,
    pseudocost_branches: AtomicUsize,
    /// Branching pseudocosts shared by every worker; see [`Pseudocosts`].
    pseudo: Mutex<Pseudocosts>,
    /// Revised-engine counters, aggregated across workers (all zero when
    /// the dense oracle engine is selected).
    refactorizations: AtomicUsize,
    max_eta_len: AtomicUsize,
    ftran_ns: AtomicU64,
    btran_ns: AtomicU64,
    next_seq: AtomicU64,
    error: Mutex<Option<SolveError>>,
    events: Mutex<Vec<IncumbentEvent>>,
    /// Certificate node log; only written when `opts.certificate` is set.
    cert: Mutex<Vec<NodeCert>>,
    /// Rows of `model` that belong to the original problem; rows beyond
    /// this are frozen root pool cuts. Node separation scans only the
    /// original rows.
    base_rows: usize,
    /// Dedup keys of the frozen root pool, so tree nodes never re-append
    /// a cut the root already carries.
    root_cut_keys: BTreeSet<CutKey>,
    /// Remaining global budget for node-local cuts
    /// (`max_cuts − root pool size`); reserved with a CAS loop.
    cut_budget: AtomicUsize,
    /// Node-local cover cuts actually appended.
    node_cuts: AtomicUsize,
    /// Validity proofs: root pool first, then node cuts in append order.
    cut_proofs: Mutex<Vec<CutProof>>,
    search_start: Instant,
}

impl<'m> Shared<'m> {
    fn inc_key(&self) -> f64 {
        f64::from_bits(self.inc_key.load(AtOrd::Relaxed))
    }

    /// `true` when a node with LP bound `bound` cannot improve on the
    /// incumbent (within `abs_gap`).
    fn dominated(&self, bound: f64) -> bool {
        self.sign * bound <= self.inc_key() + self.opts.abs_gap
    }

    /// Offers an integral candidate as the new incumbent.
    fn offer_incumbent(&self, values: Vec<f64>, objective: f64) {
        let mut inc = self.incumbent.lock().unwrap();
        if improves(self.model, objective, &values, inc.as_ref()) {
            self.inc_key
                .store((self.sign * objective).to_bits(), AtOrd::Relaxed);
            self.events.lock().unwrap().push(IncumbentEvent {
                objective,
                node: self.nodes.load(AtOrd::Relaxed),
                elapsed: self.search_start.elapsed(),
            });
            *inc = Some(Solution {
                values,
                objective,
                iterations: 0,
                nodes: 0,
                proven_optimal: false,
                stats: SolveStats::default(),
            });
        }
    }

    /// Accumulates one LP solve's revised-engine counters.
    fn absorb_telemetry(&self, t: &crate::stats::LpTelemetry) {
        self.refactorizations
            .fetch_add(t.refactorizations, AtOrd::Relaxed);
        self.max_eta_len.fetch_max(t.max_eta_len, AtOrd::Relaxed);
        self.ftran_ns.fetch_add(t.ftran_ns, AtOrd::Relaxed);
        self.btran_ns.fetch_add(t.btran_ns, AtOrd::Relaxed);
    }

    /// Records a fatal error and wakes every worker to exit.
    fn fail(&self, e: SolveError) {
        let mut err = self.error.lock().unwrap();
        if err.is_none() {
            *err = Some(e);
        }
        drop(err);
        self.pool.lock().unwrap().done = true;
        self.work.notify_all();
    }

    fn push_node(&self, node: Node) {
        self.pool.lock().unwrap().heap.push(node);
        self.work.notify_one();
    }

    /// Appends one node record to the pruning certificate (no-op unless
    /// `opts.certificate`). Every node id created by the search must be
    /// recorded exactly once for the tree-closure check to pass.
    fn record(&self, id: u64, parent: Option<u64>, lp_bound: f64, outcome: NodeOutcome) {
        if self.opts.certificate {
            self.cert.lock().unwrap().push(NodeCert {
                id,
                parent,
                lp_bound,
                outcome,
            });
        }
    }
}

/// How deep in the tree node-local cover separation still runs
/// ([`CutPolicy::Full`]); deeper nodes branch without re-separating.
const NODE_CUT_MAX_DEPTH: usize = 4;
/// Cover cuts appended per separating node.
const NODE_CUTS_PER_NODE: usize = 2;

/// Reserves up to `want` units from a shared budget counter; returns how
/// many were actually granted.
fn reserve_budget(budget: &AtomicUsize, want: usize) -> usize {
    let mut cur = budget.load(AtOrd::Relaxed);
    loop {
        let take = want.min(cur);
        if take == 0 {
            return 0;
        }
        match budget.compare_exchange(cur, cur - take, AtOrd::Relaxed, AtOrd::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

/// What became of a node after local cover separation.
enum NodeCutAct {
    /// Still open (possibly with a tightened LP point); keep plunging.
    Kept,
    /// Separation pruned it (bound domination or an infeasible cut LP);
    /// its certificate record is already written.
    Pruned,
}

/// [`CutPolicy::Full`] node separation: look for violated cover cuts at
/// the node's LP point, append up to [`NODE_CUTS_PER_NODE`] (within the
/// shared budget), and re-solve the node LP warm from the extended basis.
/// The tightened point replaces the node's; domination and infeasibility
/// prune immediately. Cuts are inherited by the whole subtree via
/// [`Node::cuts`].
fn try_node_cuts(sh: &Shared<'_>, node: &mut Node) -> Result<NodeCutAct, SolveError> {
    let mut cands = cuts::node_cover_cuts(sh.model, sh.base_rows, &node.values);
    cands.retain(|c| {
        !sh.root_cut_keys.contains(&c.key) && !node.cuts.iter().any(|n| n.key == c.key)
    });
    cands.truncate(NODE_CUTS_PER_NODE);
    let take = reserve_budget(&sh.cut_budget, cands.len());
    cands.truncate(take);
    if cands.is_empty() {
        return Ok(NodeCutAct::Kept);
    }
    let mut new_cuts = (*node.cuts).clone();
    let mut proofs = Vec::with_capacity(cands.len());
    for c in cands {
        proofs.push(c.proof);
        new_cuts.push(NodeCut { con: c.con, key: c.key });
    }
    let appended = proofs.len();
    let child = child_model(sh.model, &node.overrides, &new_cuts);
    // extended basis hint: each appended row's slack column enters basic
    let hint = node.basis.as_ref().map(|b| {
        let mut h = b.clone();
        let ncols = h.at_upper.len();
        for i in 0..appended {
            h.basic.push(ncols + i);
            h.at_upper.push(false);
        }
        h
    });
    sh.node_cuts.fetch_add(appended, AtOrd::Relaxed);
    if sh.opts.certificate {
        sh.cut_proofs.lock().unwrap().extend(proofs);
    }
    match solve_lp_relaxation_warm(&child, sh.opts, hint.as_ref()) {
        Ok((relax, point)) => {
            sh.lp_pivots.fetch_add(relax.iterations, AtOrd::Relaxed);
            sh.absorb_telemetry(&point.telemetry);
            if point.warm {
                sh.warm_started.fetch_add(1, AtOrd::Relaxed);
            }
            // cuts only tighten; keep the old bound if numerics nudged it
            // the other way (certificate monotonicity depends on it)
            if sh.sign * relax.objective < sh.sign * node.bound {
                node.bound = relax.objective;
                node.key = sh.sign * relax.objective;
            }
            node.values = relax.values;
            node.basis = Some(point.basis);
            node.cuts = Arc::new(new_cuts);
            if sh.dominated(node.bound) {
                sh.pruned_bound.fetch_add(1, AtOrd::Relaxed);
                sh.record(node.seq, node.parent, node.bound, NodeOutcome::PrunedBound);
                return Ok(NodeCutAct::Pruned);
            }
            Ok(NodeCutAct::Kept)
        }
        Err(SolveError::Infeasible) => {
            // cover cuts preserve every integer point, so an empty cut LP
            // proves the subtree holds none — same prune as a plain
            // infeasible child, and the cut proofs above justify the rows
            sh.pruned_infeasible.fetch_add(1, AtOrd::Relaxed);
            sh.record(node.seq, node.parent, node.bound, NodeOutcome::PrunedInfeasible);
            Ok(NodeCutAct::Pruned)
        }
        Err(e) => Err(e),
    }
}

/// One worker: pop best node, plunge to a leaf, repeat until the pool
/// drains or the solve aborts. `total` is the number of workers, needed
/// for the all-idle termination handshake.
fn worker(sh: &Shared<'_>, total: usize) {
    'outer: loop {
        // --- acquire a node (or detect termination) ---
        let node = {
            let mut pool = sh.pool.lock().unwrap();
            loop {
                if pool.done {
                    return;
                }
                if let Some(n) = pool.heap.pop() {
                    break n;
                }
                pool.idle += 1;
                if pool.idle == total {
                    // everyone idle + empty heap = search exhausted
                    pool.done = true;
                    sh.work.notify_all();
                    return;
                }
                pool = sh.work.wait(pool).unwrap();
                pool.idle -= 1;
            }
        };
        // a dominated node popped off the heap means every *heap* node is
        // dominated too (best-first), but in-flight dives on other workers
        // may still push better children, so discard and keep looping
        if sh.dominated(node.bound) {
            sh.pruned_bound.fetch_add(1, AtOrd::Relaxed);
            sh.record(node.seq, node.parent, node.bound, NodeOutcome::PrunedBound);
            continue;
        }

        // --- plunge: dive from this node to an integral or pruned leaf ---
        let mut cur = Some(node);
        while let Some(node) = cur.take() {
            let explored = sh.nodes.fetch_add(1, AtOrd::Relaxed) + 1;
            if explored > sh.opts.max_nodes {
                let incumbent = sh.incumbent.lock().unwrap().as_ref().map(|s| s.objective);
                sh.fail(SolveError::NodeLimit {
                    nodes: explored,
                    incumbent,
                });
                return;
            }
            if sh.dominated(node.bound) {
                sh.pruned_bound.fetch_add(1, AtOrd::Relaxed);
                sh.record(node.seq, node.parent, node.bound, NodeOutcome::PrunedBound);
                continue 'outer; // this dive is dominated; pick next best
            }
            // node-local cover separation (root already separated serially)
            let mut node = node;
            if matches!(sh.opts.cut_policy, CutPolicy::Full)
                && !node.overrides.is_empty()
                && node.overrides.len() <= NODE_CUT_MAX_DEPTH
            {
                match try_node_cuts(sh, &mut node) {
                    Ok(NodeCutAct::Kept) => {}
                    Ok(NodeCutAct::Pruned) => continue 'outer,
                    Err(e) => {
                        sh.fail(e);
                        return;
                    }
                }
            }
            let cands = fractional_candidates(sh.model, &node.values, sh.opts.tol);
            if cands.is_empty() {
                // integral: candidate incumbent (snap values to integers)
                let mut values = node.values.clone();
                for i in sh.model.integer_vars() {
                    values[i] = values[i].round();
                }
                let objective = sh.model.objective_value(&values);
                sh.record(
                    node.seq,
                    node.parent,
                    node.bound,
                    NodeOutcome::Integral { objective },
                );
                sh.offer_incumbent(values, objective);
            } else {
                // pick the branching variable BEFORE recording Branched:
                // strong-branch probes are not nodes and a fatal probe LP
                // must abort without a dangling Branched record
                let choice = match select_branch(sh, &node, &cands) {
                    Ok(c) => c,
                    Err(e) => {
                        sh.fail(e);
                        return;
                    }
                };
                sh.record(node.seq, node.parent, node.bound, NodeOutcome::Branched);
                let var = choice.var;
                let floor = choice.value.floor();
                let learn = matches!(sh.opts.branch_rule, BranchRule::Pseudocost);
                let mut cached = choice.probes.map(|[down, up]| [Some(down), Some(up)]);
                let mut children: Vec<Node> = Vec::with_capacity(2);
                for (side, (lo, hi)) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)]
                    .into_iter()
                    .enumerate()
                {
                    let mut overrides = node.overrides.clone();
                    overrides.push((var, lo, hi));
                    // a strong-branched winner reuses its probe LPs as the
                    // real children (pivots/telemetry/pseudocosts already
                    // accounted at probe time); otherwise solve fresh
                    let probe = match cached.as_mut() {
                        Some(pair) => pair[side].take().expect("probe consumed once"),
                        None => {
                            let child_model = child_model(sh.model, &overrides, &node.cuts);
                            if child_model.vars[var].lower > child_model.vars[var].upper {
                                Probe::Empty
                            } else {
                                match solve_lp_relaxation_warm(
                                    &child_model,
                                    sh.opts,
                                    node.basis.as_ref(),
                                ) {
                                    Ok((relax, point)) => {
                                        sh.lp_pivots.fetch_add(relax.iterations, AtOrd::Relaxed);
                                        sh.absorb_telemetry(&point.telemetry);
                                        if point.warm {
                                            sh.warm_started.fetch_add(1, AtOrd::Relaxed);
                                        }
                                        if learn {
                                            // child solves feed the table too
                                            let deg = (sh.sign * (node.bound - relax.objective))
                                                .max(0.0);
                                            let c = cands
                                                .iter()
                                                .find(|c| c.var == var)
                                                .expect("chosen var is a candidate");
                                            let width =
                                                if side == 0 { c.frac } else { 1.0 - c.frac };
                                            sh.pseudo
                                                .lock()
                                                .unwrap()
                                                .observe(var, side == 1, deg / width);
                                        }
                                        Probe::Solved(Box::new((relax, point)))
                                    }
                                    Err(SolveError::Infeasible) => Probe::Infeasible,
                                    Err(e) => {
                                        sh.fail(e);
                                        return;
                                    }
                                }
                            }
                        }
                    };
                    match probe {
                        Probe::Empty | Probe::Infeasible => {
                            sh.pruned_infeasible.fetch_add(1, AtOrd::Relaxed);
                            // no feasible LP; the parent bound is still a
                            // valid relaxation bound for this child
                            let id = sh.next_seq.fetch_add(1, AtOrd::Relaxed);
                            sh.record(
                                id,
                                Some(node.seq),
                                node.bound,
                                NodeOutcome::PrunedInfeasible,
                            );
                        }
                        Probe::Solved(boxed) => {
                            let (relax, point) = *boxed;
                            // bound-based pruning at generation time (also
                            // re-checks cached probes against incumbents
                            // that arrived after the probe was solved)
                            if sh.dominated(relax.objective) {
                                sh.pruned_bound.fetch_add(1, AtOrd::Relaxed);
                                let id = sh.next_seq.fetch_add(1, AtOrd::Relaxed);
                                sh.record(
                                    id,
                                    Some(node.seq),
                                    relax.objective,
                                    NodeOutcome::PrunedBound,
                                );
                                continue;
                            }
                            children.push(Node {
                                overrides,
                                key: sh.sign * relax.objective,
                                bound: relax.objective,
                                values: relax.values,
                                seq: sh.next_seq.fetch_add(1, AtOrd::Relaxed),
                                parent: Some(node.seq),
                                basis: Some(point.basis),
                                cuts: node.cuts.clone(),
                            });
                        }
                        Probe::Fatal(e) => {
                            sh.fail(e);
                            return;
                        }
                    }
                }
                // dive into the better child, park the other (or park
                // both when plunging is disabled — pure best-first)
                children.sort(); // ascending: last = best (key, FIFO seq)
                if sh.opts.plunge {
                    cur = children.pop();
                }
                for sibling in children {
                    sh.push_node(sibling);
                }
            }
        }
    }
}

/// Solves a mixed-integer linear program to proven optimality (within
/// `opts.abs_gap`), in serial or in parallel (`opts.threads`).
///
/// Errors with [`SolveError::Infeasible`] / [`SolveError::Unbounded`] when
/// the instance has no optimum, and [`SolveError::NodeLimit`] when the node
/// budget runs out first.
///
/// The returned [`Solution`] carries full telemetry in
/// [`Solution::stats`] — node/prune counters, simplex pivots, the
/// incumbent timeline, and per-phase wall times.
///
/// # Examples
///
/// ```
/// use milp::{Model, Sense, Cmp, LinExpr, SolveOptions, solve};
///
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.int_var("x", 0.0, 10.0);
/// let y = m.int_var("y", 0.0, 10.0);
/// m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
/// m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
/// let sol = solve(&m, &SolveOptions::default()).unwrap();
/// assert_eq!(sol.objective.round(), 2.0);
/// assert!(sol.proven_optimal);
/// assert_eq!(sol.stats.nodes_explored, sol.nodes);
/// ```
pub fn solve(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    solve_seeded(model, opts, None)
}

/// [`solve`], seeded with a known-feasible starting point.
///
/// `hint` is a full values vector in model-variable order (one entry per
/// variable, length checked against [`Model::num_vars`]). Its integer
/// entries are rounded and the point is re-verified against every
/// constraint; if it passes, it is offered as the initial incumbent
/// *before* the search starts, so branch & bound begins pruning against
/// its objective from node zero. An infeasible or wrong-length hint is
/// silently ignored — the solve proceeds exactly like [`solve`].
///
/// This is the mid-run rescheduling entry point: the incumbent schedule's
/// suffix, mapped back into model variables, warm-starts the re-solve over
/// the remaining steps. Optimality guarantees are unchanged — the hint can
/// only tighten pruning, never steer the search away from a better
/// solution — and the emitted [`SearchCertificate`] still closes, because
/// certificate checking accepts incumbents that arrive from outside the
/// node tree (the dual bound and prune records are what get audited).
///
/// # Examples
///
/// ```
/// use milp::{Model, Sense, Cmp, LinExpr, SolveOptions, solve, solve_with_hint};
///
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.int_var("x", 0.0, 10.0);
/// let y = m.int_var("y", 0.0, 10.0);
/// m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
/// m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
/// // seed the search with the feasible point (x, y) = (1, 1)
/// let sol = solve_with_hint(&m, &SolveOptions::default(), &[1.0, 1.0]).unwrap();
/// assert_eq!(sol.objective.round(), 2.0);
/// assert!(sol.proven_optimal);
/// ```
pub fn solve_with_hint(
    model: &Model,
    opts: &SolveOptions,
    hint: &[f64],
) -> Result<Solution, SolveError> {
    solve_seeded(model, opts, Some(hint))
}

fn solve_seeded(
    model: &Model,
    opts: &SolveOptions,
    hint: Option<&[f64]>,
) -> Result<Solution, SolveError> {
    let mut solve_span = opts.trace.span("milp.solve");
    model.validate()?;
    let t_presolve = Instant::now();
    let presolved;
    let model = if opts.presolve {
        let mut reduced = model.clone();
        crate::presolve::presolve(&mut reduced, opts.tol)?;
        presolved = reduced;
        &presolved
    } else {
        model
    };
    let presolve_time = t_presolve.elapsed();
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };

    let t_root = Instant::now();
    let (mut root, mut root_point) = solve_lp_relaxation_warm(model, opts, None)?;
    let root_lp_time = t_root.elapsed();

    // --- root cut separation (serial, so the pool is thread-count
    // independent); the augmented model is frozen for the whole tree ---
    let mut cut_stats = CutStats {
        root_bound_before: root.objective,
        root_bound_after: root.objective,
        ..CutStats::default()
    };
    let base_rows = model.cons.len();
    let mut root_proofs: Vec<CutProof> = Vec::new();
    let mut root_keys: Vec<CutKey> = Vec::new();
    let augmented;
    let model = if !matches!(opts.cut_policy, CutPolicy::Off)
        && !model.integer_vars().is_empty()
    {
        let t_cuts = Instant::now();
        let rc = cuts::separate_root(model, opts, root, root_point)?;
        cut_stats.separation_time = t_cuts.elapsed();
        cut_stats.gomory_generated = rc.gomory_generated;
        cut_stats.cover_generated = rc.cover_generated;
        cut_stats.cuts_applied = rc.proofs.len();
        cut_stats.cuts_aged_out = rc.aged_out;
        cut_stats.root_bound_after = rc.relax.objective;
        root = rc.relax;
        root_point = rc.point;
        root_proofs = rc.proofs;
        root_keys = rc.keys;
        augmented = rc.model;
        &augmented
    } else {
        model
    };

    let threads = opts.effective_threads().max(1);
    let sh = Shared {
        model,
        opts,
        sign,
        pool: Mutex::new(Pool {
            heap: BinaryHeap::new(),
            idle: 0,
            done: false,
        }),
        work: Condvar::new(),
        incumbent: Mutex::new(None),
        inc_key: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        nodes: AtomicUsize::new(0),
        pruned_bound: AtomicUsize::new(0),
        pruned_infeasible: AtomicUsize::new(0),
        lp_pivots: AtomicUsize::new(root.iterations),
        warm_started: AtomicUsize::new(0),
        strong_branch_calls: AtomicUsize::new(0),
        strong_branch_lps: AtomicUsize::new(0),
        pseudocost_branches: AtomicUsize::new(0),
        pseudo: Mutex::new(Pseudocosts::new(model.num_vars())),
        refactorizations: AtomicUsize::new(root_point.telemetry.refactorizations),
        max_eta_len: AtomicUsize::new(root_point.telemetry.max_eta_len),
        ftran_ns: AtomicU64::new(root_point.telemetry.ftran_ns),
        btran_ns: AtomicU64::new(root_point.telemetry.btran_ns),
        next_seq: AtomicU64::new(0),
        error: Mutex::new(None),
        events: Mutex::new(Vec::new()),
        cert: Mutex::new(Vec::new()),
        base_rows,
        root_cut_keys: root_keys.into_iter().collect(),
        cut_budget: AtomicUsize::new(opts.max_cuts.saturating_sub(root_proofs.len())),
        node_cuts: AtomicUsize::new(0),
        cut_proofs: Mutex::new(root_proofs),
        search_start: Instant::now(),
    };
    let root_bound = root.objective;
    // a caller-supplied warm-start point becomes the incumbent before any
    // node is explored; presolve only tightens bounds (the variable set is
    // unchanged and every feasible integer point survives propagation), so
    // the hint vector stays aligned and checkable against `model` here
    let mut hint_accepted = false;
    if let Some(h) = hint {
        if h.len() == model.num_vars() {
            if let Some((values, objective)) = rounded_candidate(model, h, opts.tol) {
                sh.offer_incumbent(values, objective);
                hint_accepted = true;
            }
        }
    }
    if opts.rounding_heuristic {
        if let Some((values, objective)) = rounded_candidate(model, &root.values, opts.tol) {
            sh.offer_incumbent(values, objective);
        }
    }
    sh.pool.lock().unwrap().heap.push(Node {
        overrides: Vec::new(),
        key: sign * root.objective,
        bound: root.objective,
        values: root.values,
        seq: sh.next_seq.fetch_add(1, AtOrd::Relaxed),
        parent: None,
        basis: Some(root_point.basis),
        cuts: Arc::new(Vec::new()),
    });

    let t_search = Instant::now();
    if threads == 1 {
        worker(&sh, 1);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| worker(&sh, threads));
            }
        });
    }
    let search_time = t_search.elapsed();

    if let Some(e) = sh.error.lock().unwrap().take() {
        return Err(e);
    }
    let incumbent = sh.incumbent.lock().unwrap().take();
    match incumbent {
        Some(mut sol) => {
            sol.iterations = sh.lp_pivots.load(AtOrd::Relaxed);
            sol.nodes = sh.nodes.load(AtOrd::Relaxed);
            sol.proven_optimal = true;
            sol.stats = SolveStats {
                nodes_explored: sol.nodes,
                nodes_pruned_bound: sh.pruned_bound.load(AtOrd::Relaxed),
                nodes_pruned_infeasible: sh.pruned_infeasible.load(AtOrd::Relaxed),
                lp_pivots: sol.iterations,
                warm_started: sh.warm_started.load(AtOrd::Relaxed),
                strong_branch_calls: sh.strong_branch_calls.load(AtOrd::Relaxed),
                strong_branch_lps: sh.strong_branch_lps.load(AtOrd::Relaxed),
                pseudocost_branches: sh.pseudocost_branches.load(AtOrd::Relaxed),
                hint_accepted,
                refactorizations: sh.refactorizations.load(AtOrd::Relaxed),
                max_eta_len: sh.max_eta_len.load(AtOrd::Relaxed),
                ftran_time: std::time::Duration::from_nanos(sh.ftran_ns.load(AtOrd::Relaxed)),
                btran_time: std::time::Duration::from_nanos(sh.btran_ns.load(AtOrd::Relaxed)),
                incumbent_updates: sh.events.lock().unwrap().drain(..).collect(),
                cuts: CutStats {
                    node_cuts: sh.node_cuts.load(AtOrd::Relaxed),
                    cuts_applied: cut_stats.cuts_applied + sh.node_cuts.load(AtOrd::Relaxed),
                    ..cut_stats
                },
                presolve_time,
                root_lp_time,
                search_time,
                threads,
                certificate: if opts.certificate {
                    let mut nodes: Vec<NodeCert> = sh.cert.lock().unwrap().drain(..).collect();
                    // parallel workers interleave records; sort for stable output
                    nodes.sort_by_key(|n| n.id);
                    Some(SearchCertificate {
                        objective: sol.objective,
                        dual_bound: root_bound,
                        abs_gap: opts.abs_gap,
                        maximize: matches!(model.sense, Sense::Maximize),
                        proven_optimal: true,
                        nodes,
                        cuts: std::mem::take(&mut *sh.cut_proofs.lock().unwrap()),
                    })
                } else {
                    None
                },
            };
            solve_span.tag("nodes", sol.nodes);
            solve_span.tag("objective", sol.objective);
            solve_span.tag("threads", threads);
            solve_span.tag("cuts", sol.stats.cuts.cuts_applied);
            Ok(sol)
        }
        None => {
            solve_span.tag("infeasible", true);
            Err(SolveError::Infeasible)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Cmp;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary => a=0? enumerate:
        // (1,0,1)=17 w5; (0,1,1)=20 w6 best; (1,1,0)=23 w7 infeasible
        let mut m = Model::new(Sense::Maximize);
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.add_con(
            LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 2.0),
            Cmp::Le,
            6.0,
        );
        m.set_objective(LinExpr::new().term(a, 10.0).term(b, 13.0).term(c, 7.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 20.0);
        assert!(s.is_one(b) && s.is_one(c) && !s.is_one(a));
        assert!(s.proven_optimal);
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // max x + y, 2x + 2y <= 5, int => LP opt 2.5, IP opt 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 2.0);
    }

    #[test]
    fn minimization_sense() {
        // min 5x + 4y s.t. x + y >= 3, 2x + y >= 4, integers
        // candidates: x=1,y=2 => 13; x=2,y=1 =>14; x=0,y=4 => 16; x=1,y=2 best
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 1.0), Cmp::Ge, 4.0);
        m.set_objective(LinExpr::new().term(x, 5.0).term(y, 4.0));
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.objective.round(), 13.0);
        assert_eq!(s.int_value(x), 1);
        assert_eq!(s.int_value(y), 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 2z, y integer <= 3.7-ish constraint, z continuous <= 0.5
        let mut m = Model::new(Sense::Maximize);
        let y = m.int_var("y", 0.0, 100.0);
        let z = m.num_var("z", 0.0, 0.5);
        m.add_con(LinExpr::new().term(y, 1.0).term(z, 1.0), Cmp::Le, 3.7);
        m.set_objective(LinExpr::new().term(y, 1.0).term(z, 2.0));
        let s = solve(&m, &opts()).unwrap();
        // y=3, z=0.5 => 4.0
        assert!((s.objective - 4.0).abs() < 1e-5);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 0.4);
        m.add_con(LinExpr::var(x), Cmp::Le, 0.6);
        m.set_objective(LinExpr::var(x));
        assert_eq!(solve(&m, &opts()).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn weighted_choice_mirrors_paper_structure() {
        // Two "analyses" with counts k1, k2 <= 10, activation binaries,
        // time budget: 2*k1 + 5*k2 <= 20, maximize (r1 + r2) + (k1 + 2*k2).
        // Mirrors Eq. 1's |A| + w|C| structure.
        let mut m = Model::new(Sense::Maximize);
        let r1 = m.binary("run1");
        let r2 = m.binary("run2");
        let k1 = m.int_var("k1", 0.0, 10.0);
        let k2 = m.int_var("k2", 0.0, 10.0);
        // k_i <= 10 * run_i  (activation linking)
        m.add_con(LinExpr::new().term(k1, 1.0).term(r1, -10.0), Cmp::Le, 0.0);
        m.add_con(LinExpr::new().term(k2, 1.0).term(r2, -10.0), Cmp::Le, 0.0);
        m.add_con(LinExpr::new().term(k1, 2.0).term(k2, 5.0), Cmp::Le, 20.0);
        m.set_objective(
            LinExpr::new()
                .term(r1, 1.0)
                .term(r2, 1.0)
                .term(k1, 1.0)
                .term(k2, 2.0),
        );
        let s = solve(&m, &opts()).unwrap();
        // best: k1=10 (cost 20), k2=0 but then r2 can still be 1 with k2=0:
        // obj = 1 + 1 + 10 + 0 = 12. Alternative k1=5,k2=2: 1+1+5+4=11.
        assert_eq!(s.objective.round(), 12.0);
        assert_eq!(s.int_value(k1), 10);
    }

    #[test]
    fn plunging_and_pure_best_first_agree() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.binary(&format!("x{i}"))).collect();
        let w = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
        let p = [9.0, 12.0, 4.0, 15.0, 8.0, 2.0, 11.0, 5.0];
        m.add_con(
            LinExpr::sum(vars.iter().zip(w).map(|(&v, w)| (v, w))),
            Cmp::Le,
            14.0,
        );
        m.set_objective(LinExpr::sum(vars.iter().zip(p).map(|(&v, p)| (v, p))));
        let with = solve(&m, &opts()).unwrap();
        let without = solve(
            &m,
            &SolveOptions {
                plunge: false,
                ..opts()
            },
        )
        .unwrap();
        assert!((with.objective - without.objective).abs() < 1e-9);
        assert!(with.proven_optimal && without.proven_optimal);
    }

    #[test]
    fn node_limit_reported() {
        let mut m = Model::new(Sense::Maximize);
        let mut obj = LinExpr::new();
        let mut row = LinExpr::new();
        for i in 0..14 {
            let v = m.int_var(&format!("x{i}"), 0.0, 1.0);
            obj = obj.term(v, 1.0 + (i as f64) * 0.01);
            row = row.term(v, 2.0);
        }
        m.add_con(row, Cmp::Le, 13.0); // forces fractionality
        m.set_objective(obj);
        let tight = SolveOptions {
            max_nodes: 2,
            rounding_heuristic: false,
            ..opts()
        };
        match solve(&m, &tight) {
            Err(SolveError::NodeLimit { nodes, .. }) => assert!(nodes >= 2),
            Ok(s) => panic!("expected node limit, got obj {}", s.objective),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    /// A knapsack with deliberately tied optima: items 0+1 and 2+3 both
    /// give objective 10 at weight 4. The lexicographic tie-break must
    /// pick the same argmax every time.
    fn tied_knapsack() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..4).map(|i| m.binary(&format!("x{i}"))).collect();
        m.add_con(
            LinExpr::sum(vars.iter().map(|&v| (v, 2.0))),
            Cmp::Le,
            4.0,
        );
        m.set_objective(LinExpr::sum(vars.iter().map(|&v| (v, 5.0))));
        m
    }

    #[test]
    fn serial_solve_is_deterministic() {
        let m = tied_knapsack();
        let a = solve(&m, &opts()).unwrap();
        let b = solve(&m, &opts()).unwrap();
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.values, b.values);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.stats.nodes_explored, b.stats.nodes_explored);
        assert_eq!(a.stats.lp_pivots, b.stats.lp_pivots);
    }

    #[test]
    fn parallel_matches_serial_objective() {
        for threads in [2, 3, 4] {
            for model in [tied_knapsack(), {
                let mut m = Model::new(Sense::Minimize);
                let x = m.int_var("x", 0.0, 10.0);
                let y = m.int_var("y", 0.0, 10.0);
                m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
                m.add_con(LinExpr::new().term(x, 2.0).term(y, 1.0), Cmp::Ge, 4.0);
                m.set_objective(LinExpr::new().term(x, 5.0).term(y, 4.0));
                m
            }] {
                let serial = solve(&model, &opts()).unwrap();
                let par = solve(
                    &model,
                    &SolveOptions {
                        threads,
                        ..opts()
                    },
                )
                .unwrap();
                assert_eq!(
                    serial.objective.to_bits(),
                    par.objective.to_bits(),
                    "objective mismatch at {threads} threads"
                );
                assert!(par.proven_optimal);
                assert_eq!(par.stats.threads, threads);
            }
        }
    }

    #[test]
    fn telemetry_is_populated() {
        let m = tied_knapsack();
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.stats.nodes_explored, s.nodes);
        assert_eq!(s.stats.lp_pivots, s.iterations);
        assert_eq!(s.stats.threads, 1);
        assert!(!s.stats.incumbent_updates.is_empty());
        // the timeline ends at the returned incumbent
        let last = s.stats.incumbent_updates.last().unwrap();
        assert_eq!(last.objective.to_bits(), s.objective.to_bits());
    }

    #[test]
    fn warm_starts_are_used() {
        // force branching so children exist, then check the counter
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let no_heuristic = SolveOptions {
            rounding_heuristic: false,
            ..opts()
        };
        let s = solve(&m, &no_heuristic).unwrap();
        let cold = solve(
            &m,
            &SolveOptions {
                warm_start: false,
                ..no_heuristic.clone()
            },
        )
        .unwrap();
        assert_eq!(s.objective.to_bits(), cold.objective.to_bits());
        assert_eq!(cold.stats.warm_started, 0);
        if s.nodes > 1 {
            assert!(s.stats.warm_started > 0, "stats: {}", s.stats);
        }
    }

    #[test]
    fn incumbent_tie_break_is_lexicographic() {
        let m = tied_knapsack();
        // two optima exist; the returned one must be the lex-smallest
        // among equal-objective candidates the search saw
        let s = solve(&m, &opts()).unwrap();
        let t = solve(&m, &opts()).unwrap();
        assert_eq!(s.values, t.values);
        // and improves() itself orders lexicographically
        let cand_hi = Solution {
            values: vec![1.0, 1.0, 0.0, 0.0],
            objective: 10.0,
            iterations: 0,
            nodes: 0,
            proven_optimal: false,
            stats: SolveStats::default(),
        };
        assert!(improves(&m, 10.0, &[0.0, 1.0, 1.0, 0.0], Some(&cand_hi)));
        assert!(!improves(&m, 10.0, &[1.0, 1.0, 0.0, 0.0], Some(&cand_hi)));
        assert!(improves(&m, 11.0, &[1.0, 1.0, 1.0, 0.0], Some(&cand_hi)));
    }

    #[test]
    fn hint_seeds_the_incumbent_before_search() {
        let m = tied_knapsack();
        let quiet = SolveOptions {
            rounding_heuristic: false,
            ..opts()
        };
        // the optimal point itself as hint: the first incumbent event must
        // land at node 0 (before any node was explored)
        let s = solve_with_hint(&m, &quiet, &[1.0, 1.0, 0.0, 0.0]).unwrap();
        assert_eq!(s.objective.round(), 10.0);
        assert!(s.proven_optimal);
        let first = s.stats.incumbent_updates.first().expect("hint recorded");
        assert_eq!(first.node, 0, "hint must arrive before the search");
        assert_eq!(first.objective.round(), 10.0);
    }

    #[test]
    fn hint_does_not_change_the_optimum() {
        let m = tied_knapsack();
        let plain = solve(&m, &opts()).unwrap();
        // suboptimal but feasible hint: same proven optimum and same
        // lex-smallest argmax as the unseeded search
        let hinted = solve_with_hint(&m, &opts(), &[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(plain.objective.to_bits(), hinted.objective.to_bits());
        assert_eq!(plain.values, hinted.values);
    }

    #[test]
    fn infeasible_or_malformed_hints_are_ignored() {
        let m = tied_knapsack();
        // violates the knapsack row
        let s = solve_with_hint(&m, &opts(), &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.objective.round(), 10.0);
        // wrong length
        let s = solve_with_hint(&m, &opts(), &[1.0]).unwrap();
        assert_eq!(s.objective.round(), 10.0);
        // fractional entries on integer vars get rounded, then checked
        let s = solve_with_hint(&m, &opts(), &[0.9, 1.1, 0.0, 0.0]).unwrap();
        assert_eq!(s.objective.round(), 10.0);
        assert!(s.proven_optimal);
    }

    #[test]
    fn hinted_solve_still_emits_a_closing_certificate() {
        let m = tied_knapsack();
        let with_cert = SolveOptions {
            certificate: true,
            rounding_heuristic: false,
            ..opts()
        };
        let s = solve_with_hint(&m, &with_cert, &[0.0, 1.0, 1.0, 0.0]).unwrap();
        let cert = s.stats.certificate.as_ref().expect("certificate emitted");
        assert!(cert.proven_optimal);
        check_cert_closure(cert, s.objective);
    }

    /// Structural invariants every emitted certificate must satisfy; the
    /// independent `certify` crate re-checks the same properties (and more)
    /// without this crate's code.
    fn check_cert_closure(cert: &insitu_types::SearchCertificate, objective: f64) {
        use insitu_types::NodeOutcome as O;
        use std::collections::BTreeMap;
        assert!(cert.proven_optimal);
        assert_eq!(cert.objective.to_bits(), objective.to_bits());
        let by_id: BTreeMap<u64, &insitu_types::NodeCert> =
            cert.nodes.iter().map(|n| (n.id, n)).collect();
        assert_eq!(by_id.len(), cert.nodes.len(), "duplicate node ids");
        // exactly one root, and every parent link resolves to a Branched node
        assert_eq!(cert.nodes.iter().filter(|n| n.parent.is_none()).count(), 1);
        let mut child_count: BTreeMap<u64, usize> = BTreeMap::new();
        for n in &cert.nodes {
            if let Some(p) = n.parent {
                let parent = by_id.get(&p).expect("dangling parent id");
                assert!(matches!(parent.outcome, O::Branched), "parent not Branched");
                *child_count.entry(p).or_insert(0) += 1;
            }
        }
        for n in &cert.nodes {
            match n.outcome {
                // binary branching: every Branched node has both sides recorded
                O::Branched => assert_eq!(child_count.get(&n.id), Some(&2)),
                O::Integral { objective: o } => {
                    let slack = if cert.maximize { objective - o } else { o - objective };
                    assert!(slack >= -1e-9, "integral leaf beats claimed optimum");
                }
                O::PrunedBound => {
                    let slack = if cert.maximize {
                        objective + cert.abs_gap - n.lp_bound
                    } else {
                        n.lp_bound - objective + cert.abs_gap
                    };
                    assert!(slack >= -1e-9, "bound-pruned leaf could improve");
                }
                O::PrunedInfeasible => {}
            }
        }
    }

    #[test]
    fn certificate_off_by_default() {
        let s = solve(&tied_knapsack(), &opts()).unwrap();
        assert!(s.stats.certificate.is_none());
    }

    #[test]
    fn certificate_closes_the_tree() {
        let with_cert = SolveOptions {
            certificate: true,
            ..opts()
        };
        for model in [tied_knapsack(), {
            let mut m = Model::new(Sense::Minimize);
            let x = m.int_var("x", 0.0, 10.0);
            let y = m.int_var("y", 0.0, 10.0);
            m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
            m.add_con(LinExpr::new().term(x, 2.0).term(y, 1.0), Cmp::Ge, 4.0);
            m.set_objective(LinExpr::new().term(x, 5.0).term(y, 4.0));
            m
        }] {
            let s = solve(&model, &with_cert).unwrap();
            let cert = s.stats.certificate.as_ref().expect("certificate requested");
            check_cert_closure(cert, s.objective);
            // certificate does not perturb the solve itself
            let plain = solve(&model, &opts()).unwrap();
            assert_eq!(plain.objective.to_bits(), s.objective.to_bits());
            assert_eq!(plain.values, s.values);
            assert_eq!(plain.nodes, s.nodes);
        }
    }

    #[test]
    fn parallel_certificate_closes_the_tree() {
        let with_cert = SolveOptions {
            certificate: true,
            threads: 3,
            ..opts()
        };
        let s = solve(&tied_knapsack(), &with_cert).unwrap();
        check_cert_closure(s.stats.certificate.as_ref().unwrap(), s.objective);
    }

    #[test]
    fn certificate_round_trips_through_json() {
        let with_cert = SolveOptions {
            certificate: true,
            ..opts()
        };
        let s = solve(&tied_knapsack(), &with_cert).unwrap();
        let cert = s.stats.certificate.unwrap();
        let text = insitu_types::json::to_string(&cert);
        let back: insitu_types::SearchCertificate =
            insitu_types::json::from_str(&text).unwrap();
        assert_eq!(back, cert);
    }
}
