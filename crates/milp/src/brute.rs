//! Brute-force enumeration oracle for PURE-INTEGER models.
//!
//! Exists so the test suites (unit, property and integration) can certify
//! branch-and-bound optimality on small instances: enumerate every integer
//! assignment inside the variable bounds, keep the feasible ones, return the
//! best objective. Exponential, guarded by an explicit enumeration cap.

use crate::error::SolveError;
use crate::model::{Model, VarKind};

/// Result of a brute-force enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteResult {
    /// Best feasible assignment found.
    pub values: Vec<f64>,
    /// Its objective value.
    pub objective: f64,
    /// Number of assignments enumerated.
    pub enumerated: usize,
}

/// Exhaustively solves a pure-integer model. Fails on models with
/// continuous variables, unbounded integer domains, or more than
/// `max_points` candidate assignments.
pub fn brute_force(model: &Model, max_points: usize) -> Result<BruteResult, SolveError> {
    model.validate()?;
    let mut ranges: Vec<(i64, i64)> = Vec::with_capacity(model.vars.len());
    let mut points: usize = 1;
    for v in &model.vars {
        if v.kind != VarKind::Integer {
            return Err(SolveError::BadModel(
                "brute force handles pure-integer models only".into(),
            ));
        }
        if !v.lower.is_finite() || !v.upper.is_finite() {
            return Err(SolveError::BadModel(
                "brute force needs finite integer bounds".into(),
            ));
        }
        let lo = v.lower.ceil() as i64;
        let hi = v.upper.floor() as i64;
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
        ranges.push((lo, hi));
        points = points.saturating_mul((hi - lo + 1) as usize);
        if points > max_points {
            return Err(SolveError::BadModel(format!(
                "enumeration would exceed {max_points} points"
            )));
        }
    }
    let n = ranges.len();
    let mut current: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut enumerated = 0usize;
    loop {
        enumerated += 1;
        let values: Vec<f64> = current.iter().map(|&v| v as f64).collect();
        if model.is_feasible(&values, 1e-7) {
            let obj = model.objective_value(&values);
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| model.better(obj, *b));
            if better {
                best = Some((values, obj));
            }
        }
        // odometer increment
        let mut i = 0;
        loop {
            if i == n {
                return match best {
                    Some((values, objective)) => Ok(BruteResult {
                        values,
                        objective,
                        enumerated,
                    }),
                    None => Err(SolveError::Infeasible),
                };
            }
            if current[i] < ranges[i].1 {
                current[i] += 1;
                break;
            }
            current[i] = ranges[i].0;
            i += 1;
        }
        if n == 0 {
            // no variables: single (empty) assignment already evaluated
            return match best {
                Some((values, objective)) => Ok(BruteResult {
                    values,
                    objective,
                    enumerated,
                }),
                None => Err(SolveError::Infeasible),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Sense};
    use crate::options::SolveOptions;

    #[test]
    fn agrees_with_branch_and_bound_on_knapsack() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| m.binary(&format!("x{i}"))).collect();
        let weights = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0];
        let profits = [9.0, 12.0, 4.0, 15.0, 8.0, 2.0];
        m.add_con(
            LinExpr::sum(vars.iter().zip(weights).map(|(&v, w)| (v, w))),
            Cmp::Le,
            11.0,
        );
        m.set_objective(LinExpr::sum(vars.iter().zip(profits).map(|(&v, p)| (v, p))));
        let exact = brute_force(&m, 1 << 20).unwrap();
        let bb = crate::solve(&m, &SolveOptions::default()).unwrap();
        assert!((exact.objective - bb.objective).abs() < 1e-6);
        assert_eq!(exact.enumerated, 64);
    }

    #[test]
    fn rejects_continuous_models() {
        let mut m = Model::new(Sense::Maximize);
        m.num_var("x", 0.0, 1.0);
        assert!(matches!(
            brute_force(&m, 100),
            Err(SolveError::BadModel(_))
        ));
    }

    #[test]
    fn rejects_oversized_enumerations() {
        let mut m = Model::new(Sense::Maximize);
        for i in 0..40 {
            m.binary(&format!("x{i}"));
        }
        assert!(matches!(
            brute_force(&m, 1000),
            Err(SolveError::BadModel(_))
        ));
    }

    #[test]
    fn infeasible_when_no_assignment_fits() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary("x");
        m.add_con(LinExpr::var(x), Cmp::Ge, 2.0);
        assert_eq!(brute_force(&m, 100).unwrap_err(), SolveError::Infeasible);
    }
}
