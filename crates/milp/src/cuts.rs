//! Cutting-plane separation: Gomory mixed-integer cuts and knapsack cover
//! cuts, with a bounded, deterministically ordered root cut pool.
//!
//! # What gets separated
//!
//! * **Gomory mixed-integer (GMI) cuts** are read off the optimal simplex
//!   tableau of the LP relaxation through [`TableauView`]: every basis row
//!   whose basic variable is an integer model variable with a fractional
//!   value yields the base equality `Σⱼ αⱼ xⱼ = β` (over structural *and*
//!   slack columns), which the GMI formula turns into a valid inequality
//!   that the current vertex violates by the fractional part `f₀`.
//! * **Cover cuts** come from `≤` rows whose terms are all positive over
//!   binary variables: a *cover* `C` with `Σ_{v∈C} a_v > rhs` proves that
//!   not all of `C` can be 1 at once — `Σ_{v∈C} x_v ≤ |C| − 1`. Covers are
//!   found greedily by descending LP value and trimmed to a minimal one.
//!
//! # Exactness contract
//!
//! Every coefficient of every emitted cut is derived in `i128` rational
//! arithmetic from the *recorded* f64 base row, then rounded **outward**
//! (coefficients up, right-hand side down) so the recorded
//! [`CutProof`] dominates the exact GMI inequality — the property
//! `certify::check_certificate` re-verifies. Anything that cannot be
//! represented or would overflow simply skips the cut: separation is an
//! optimization, never a soundness obligation.
//!
//! Gomory proofs live in the **standard-form column space**: variable
//! indices below the structural count are model variables, indices beyond
//! it denote the slack of that row. The applied model-space cut substitutes
//! each slack by its defining row (`s_r = b_r − Σ a_rk x_k`) and subtracts
//! a small safety margin from the right-hand side to absorb the f64
//! substitution rounding; the substitution itself is attested by the same
//! trust boundary as the LP bounds (see `docs/CERTIFY.md`).
//!
//! # The root pool
//!
//! [`separate_root`] runs up to [`crate::SolveOptions::cut_rounds`] rounds:
//! separate, dedup against every cut ever tried (bit-exact keys), rank by
//! violation, append up to the remaining [`crate::SolveOptions::max_cuts`]
//! budget, warm re-solve the LP dual-simplex style from the extended basis,
//! then age the pool — a cut slack at the re-solved vertex for
//! [`CUT_AGE_ROUNDS`] consecutive rounds is evicted (its slack column is
//! necessarily basic, so the basis survives the row deletion) and the LP is
//! re-solved once more. The loop is fully serial and runs before any worker
//! thread spawns, so the resulting pool is bitwise identical at any thread
//! count.

use std::collections::BTreeSet;
use std::ops::Range;

use insitu_types::{CutProof, GomoryVar};

use crate::error::SolveError;
use crate::expr::{LinExpr, Var};
use crate::model::{Cmp, Constraint, Model, VarKind};
use crate::options::{SimplexEngine, SolveOptions};
use crate::revised::TableauView;
use crate::simplex::{solve_lp_relaxation_warm, LpPoint};
use crate::solution::Solution;
use crate::standard::{ColMap, StandardForm};

/// Keep only base-row coefficients above this magnitude; smaller entries
/// are BTRAN noise and recording them would poison the exact derivation.
const COEF_EPS: f64 = 1e-11;
/// Gomory rows are only used when the basic value's fractional part lies
/// in `[GOMORY_MIN_FRAC, 1 − GOMORY_MIN_FRAC]` — near-integral rows give
/// shallow, numerically fragile cuts.
const GOMORY_MIN_FRAC: f64 = 0.01;
/// Minimum violation of the *applied* model-space Gomory cut at the
/// current vertex (after outward rounding and the safety margin).
const GOMORY_MIN_VIOLATION: f64 = 1e-3;
/// Minimum violation `Σ_{v∈C} x*_v − (|C| − 1)` for a cover cut.
const COVER_MIN_VIOLATION: f64 = 0.01;
/// Skip Gomory base rows wider than this: the proof is recorded verbatim
/// in the certificate and very dense rows bloat it without helping.
const MAX_BASE_NNZ: usize = 512;
/// Relative safety margin subtracted from an applied Gomory cut's rhs to
/// absorb f64 rounding in the slack substitution (weakens, never
/// invalidates).
const RHS_MARGIN: f64 = 1e-7;
/// A pool cut slack (beyond feasibility noise) at this many consecutive
/// re-solved vertices is evicted.
const CUT_AGE_ROUNDS: u8 = 2;
/// Bound-improvement stall threshold (relative) that ends the root loop.
const STALL_TOL: f64 = 1e-9;

// ---------------------------------------------------------------------------
// exact rational arithmetic (separator-local; the checker in `certify` has
// its own independent implementation — solver and auditor must not share)
// ---------------------------------------------------------------------------

/// A reduced `i128` rational. Every operation is checked: `None` means
/// "would overflow", and callers respond by skipping the cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct R {
    /// Numerator (carries the sign).
    n: i128,
    /// Denominator, always positive.
    d: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs().max(1)
}

impl R {
    const ZERO: R = R { n: 0, d: 1 };
    const ONE: R = R { n: 1, d: 1 };

    fn make(n: i128, d: i128) -> Option<R> {
        if d == 0 {
            return None;
        }
        let (n, d) = if d < 0 { (n.checked_neg()?, d.checked_neg()?) } else { (n, d) };
        let g = gcd(n, d);
        Some(R { n: n / g, d: d / g })
    }

    /// Exact conversion: every finite f64 is a dyadic rational; `None`
    /// when the scaled numerator or denominator leaves `i128`.
    fn from_f64(x: f64) -> Option<R> {
        if !x.is_finite() {
            return None;
        }
        let mut num = x;
        let mut den: i128 = 1;
        while num != num.trunc() {
            num *= 2.0;
            den = den.checked_mul(2)?;
        }
        if num.abs() >= 1.5e38 {
            return None; // would not fit i128
        }
        R::make(num as i128, den)
    }

    fn is_zero(&self) -> bool {
        self.n == 0
    }

    fn add(&self, o: &R) -> Option<R> {
        let g = gcd(self.d, o.d);
        let (da, db) = (self.d / g, o.d / g);
        let n = self.n.checked_mul(db)?.checked_add(o.n.checked_mul(da)?)?;
        R::make(n, self.d.checked_mul(db)?)
    }

    fn sub(&self, o: &R) -> Option<R> {
        self.add(&R { n: o.n.checked_neg()?, d: o.d })
    }

    fn mul(&self, o: &R) -> Option<R> {
        // cross-reduce before multiplying to delay overflow
        let g1 = gcd(self.n, o.d);
        let g2 = gcd(o.n, self.d);
        let n = (self.n / g1).checked_mul(o.n / g2)?;
        let d = (self.d / g2).checked_mul(o.d / g1)?;
        R::make(n, d)
    }

    fn div(&self, o: &R) -> Option<R> {
        if o.n == 0 {
            return None;
        }
        self.mul(&R::make(o.d, o.n)?)
    }

    fn neg(&self) -> Option<R> {
        Some(R { n: self.n.checked_neg()?, d: self.d })
    }

    /// `⌊self⌋` as a rational.
    fn floor(&self) -> R {
        R { n: self.n.div_euclid(self.d), d: 1 }
    }

    /// Fractional part in `[0, 1)`.
    fn frac(&self) -> Option<R> {
        self.sub(&self.floor())
    }

    /// Exact comparison; `None` on overflow of the cross products.
    fn cmp(&self, o: &R) -> Option<std::cmp::Ordering> {
        let g1 = gcd(self.n, o.n);
        let g2 = gcd(self.d, o.d);
        let a = (self.n / g1).checked_mul(o.d / g2)?;
        let b = (o.n / g1).checked_mul(self.d / g2)?;
        // dividing both numerators by g1 can flip both signs when g1 "sees"
        // negative values — it cannot: gcd() returns a positive value.
        Some(a.cmp(&b))
    }

    fn le(&self, o: &R) -> Option<bool> {
        Some(self.cmp(o)? != std::cmp::Ordering::Greater)
    }

    fn min(&self, o: &R) -> Option<R> {
        Some(if self.le(o)? { *self } else { *o })
    }

    fn to_f64(self) -> f64 {
        self.n as f64 / self.d as f64
    }
}

/// Smallest f64 `≥ x` reachable within a few ulps of the rounded quotient
/// (outward rounding for cut coefficients).
fn f64_at_least(x: &R) -> Option<f64> {
    let mut f = x.to_f64();
    if !f.is_finite() {
        return None;
    }
    // to_f64 is within a few ulps of exact; walk up until provably >= x
    for _ in 0..8 {
        if x.le(&R::from_f64(f)?)? {
            return Some(f);
        }
        f = next_up(f);
    }
    None
}

/// Largest f64 `≤ x` (outward rounding for cut right-hand sides).
fn f64_at_most(x: &R) -> Option<f64> {
    Some(-f64_at_least(&x.neg()?)?)
}

/// `f64::next_up` (open-coded: stable since 1.86, but spelled out so the
/// bit manipulation is auditable next to the proofs that depend on it).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    if x == 0.0 {
        return f64::from_bits(1);
    }
    f64::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

// ---------------------------------------------------------------------------
// candidates, keys, the pool
// ---------------------------------------------------------------------------

/// Bit-exact identity of a cut row in model space: comparison direction,
/// sorted `(var, coeff-bits)` terms, and rhs bits. Used for dedup across
/// separation rounds and between root pool and node cuts.
pub(crate) type CutKey = (bool, Vec<(usize, u64)>, u64);

fn cut_key(con: &Constraint) -> CutKey {
    let mut terms: Vec<(usize, u64)> = con
        .expr
        .terms
        .iter()
        .map(|&(v, c)| (v.0, c.to_bits()))
        .collect();
    terms.sort_unstable();
    (matches!(con.cmp, Cmp::Ge), terms, con.rhs.to_bits())
}

/// One separated cut: the model-space row to append, its validity proof,
/// and ranking metadata.
#[derive(Debug, Clone)]
pub(crate) struct CutCandidate {
    /// Model-space inequality to append.
    pub(crate) con: Constraint,
    /// Exact-arithmetic validity certificate.
    pub(crate) proof: CutProof,
    /// Dedup identity.
    pub(crate) key: CutKey,
    /// Violation at the LP vertex the cut was separated from.
    pub(crate) violation: f64,
    /// True for Gomory cuts (cover otherwise).
    pub(crate) gomory: bool,
}

/// A node-local cut row plus its dedup key, shared down the subtree.
#[derive(Debug, Clone)]
pub(crate) struct NodeCut {
    /// The appended inequality.
    pub(crate) con: Constraint,
    /// Dedup identity (against the root pool and ancestor cuts).
    pub(crate) key: CutKey,
}

/// A pool member with its activity-aging counter.
struct ActiveCut {
    proof: CutProof,
    key: CutKey,
    idle: u8,
}

/// Everything [`separate_root`] hands back to the search: the augmented
/// (frozen) model, the re-solved root optimum over it, the surviving cut
/// proofs, and separation counters. `relax.iterations` and
/// `point.telemetry` are *cumulative* over the incoming root solve plus
/// every separation re-solve, so the caller seeds its counters exactly as
/// it would from a cut-free root.
pub(crate) struct RootCuts {
    /// Base model plus the surviving pool rows (appended after
    /// `base_rows`).
    pub(crate) model: Model,
    /// Optimum of `model`'s LP relaxation.
    pub(crate) relax: Solution,
    /// Basis/telemetry snapshot matching `relax`.
    pub(crate) point: LpPoint,
    /// Validity proofs of the surviving pool cuts, in row order.
    pub(crate) proofs: Vec<CutProof>,
    /// Dedup keys of the surviving pool cuts, in row order.
    pub(crate) keys: Vec<CutKey>,
    /// Gomory candidates generated across all rounds (pre-selection).
    pub(crate) gomory_generated: usize,
    /// Cover candidates generated across all rounds (pre-selection).
    pub(crate) cover_generated: usize,
    /// Pool cuts evicted by aging.
    pub(crate) aged_out: usize,
}

// ---------------------------------------------------------------------------
// cover separation
// ---------------------------------------------------------------------------

/// Separates violated cover cuts from `model.cons[rows]` at `values`.
/// Only `≤` rows with all-positive coefficients over binary variables
/// qualify. Deterministic: rows scanned in order, members sorted.
fn cover_cuts_into(
    model: &Model,
    rows: Range<usize>,
    values: &[f64],
    out: &mut Vec<CutCandidate>,
) {
    'rows: for ri in rows {
        let con = &model.cons[ri];
        if !matches!(con.cmp, Cmp::Le) || con.expr.terms.is_empty() {
            continue;
        }
        let Some(rhs) = R::from_f64(con.rhs) else { continue };
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(con.expr.terms.len());
        for &(v, c) in &con.expr.terms {
            let var = &model.vars[v.0];
            if c <= 0.0
                || var.kind != VarKind::Integer
                || var.lower != 0.0
                || var.upper != 1.0
            {
                continue 'rows;
            }
            terms.push((v.0, c));
        }
        // greedy: largest LP value first (ties to the lowest index)
        let mut order: Vec<usize> = (0..terms.len()).collect();
        order.sort_by(|&a, &b| {
            values[terms[b].0]
                .total_cmp(&values[terms[a].0])
                .then_with(|| terms[a].0.cmp(&terms[b].0))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut sum = R::ZERO;
        let mut covered = false;
        for &k in &order {
            let Some(a) = R::from_f64(terms[k].1) else { continue 'rows };
            let Some(s) = sum.add(&a) else { continue 'rows };
            sum = s;
            cover.push(k);
            if rhs.le(&sum) == Some(true) && sum != rhs {
                covered = true;
                break;
            }
        }
        if !covered {
            continue;
        }
        // trim to a minimal cover from the tail: dropping the smallest-value
        // member never decreases the violation while the weight still
        // exceeds the capacity
        while cover.len() > 1 {
            let last = *cover.last().expect("non-empty cover");
            let Some(a) = R::from_f64(terms[last].1) else { continue 'rows };
            let Some(rest) = sum.sub(&a) else { continue 'rows };
            if rhs.le(&rest) == Some(true) && rest != rhs {
                sum = rest;
                cover.pop();
            } else {
                break;
            }
        }
        let lhs: f64 = cover.iter().map(|&k| values[terms[k].0]).sum();
        let violation = lhs - (cover.len() as f64 - 1.0);
        if violation < COVER_MIN_VIOLATION {
            continue;
        }
        let mut members: Vec<usize> = cover.iter().map(|&k| terms[k].0).collect();
        members.sort_unstable();
        let mut row: Vec<(usize, f64)> = terms.clone();
        row.sort_unstable_by_key(|&(v, _)| v);
        let expr = LinExpr::sum(members.iter().map(|&v| (Var(v), 1.0)));
        let con = Constraint {
            expr,
            cmp: Cmp::Le,
            rhs: members.len() as f64 - 1.0,
        };
        let key = cut_key(&con);
        out.push(CutCandidate {
            con,
            proof: CutProof::Cover {
                row,
                rhs: rhs.to_f64(),
                members,
            },
            key,
            violation,
            gomory: false,
        });
    }
}

// ---------------------------------------------------------------------------
// Gomory separation
// ---------------------------------------------------------------------------

/// Separates GMI cuts from the optimal tableau of `point.basis` over
/// `model`. Requires every model variable to map to a single structural
/// column ([`ColMap::Direct`], true for finite-lower-bound models) and the
/// revised engine; otherwise quietly separates nothing.
fn gomory_cuts_into(
    model: &Model,
    opts: &SolveOptions,
    point: &LpPoint,
    out: &mut Vec<CutCandidate>,
) {
    let Ok(sf) = StandardForm::from_model(model) else { return };
    if !sf.var_map.iter().all(|m| matches!(m, ColMap::Direct(_))) {
        return;
    }
    let Some(mut view) = TableauView::new(&sf, opts, &point.basis) else { return };
    let n_struct = sf.n_struct;
    let integral: Vec<bool> = model
        .vars
        .iter()
        .map(|v| v.kind == VarKind::Integer)
        .collect();
    let mut alpha: Vec<f64> = Vec::new();
    for r in 0..view.nrows() {
        let j0 = view.basic_col(r);
        if j0 >= n_struct || !integral[j0] {
            continue;
        }
        let xb = view.basic_value(r);
        let f = xb - xb.floor();
        if !(GOMORY_MIN_FRAC..=1.0 - GOMORY_MIN_FRAC).contains(&f) {
            continue;
        }
        let beta = view.row(r, &mut alpha);
        if let Some(cand) =
            derive_gomory(model, &sf, &view, &alpha, beta, &integral, &point.x)
        {
            out.push(cand);
        }
    }
}

/// Turns one recorded tableau row `Σ αⱼ xⱼ = β` into a proven GMI cut.
/// All arithmetic after recording is exact; returns `None` whenever the
/// row is unusable (dense, overflowing, shallow, or infinite-bound).
#[allow(clippy::too_many_arguments)]
fn derive_gomory(
    model: &Model,
    sf: &StandardForm,
    view: &TableauView<'_>,
    alpha: &[f64],
    beta: f64,
    integral: &[bool],
    x: &[f64],
) -> Option<CutCandidate> {
    let n_struct = sf.n_struct;
    // record the base row: coefficients above noise, each with the bound
    // its variable is shifted from
    struct BaseVar {
        col: usize,
        coeff: f64,
        bound: f64,
        at_upper: bool,
        int_shift: bool,
    }
    let mut base: Vec<BaseVar> = Vec::new();
    for (col, &a) in alpha.iter().enumerate() {
        if a.abs() <= COEF_EPS || !a.is_finite() {
            continue;
        }
        if base.len() >= MAX_BASE_NNZ {
            return None;
        }
        // standard form gives every column a finite lower bound, so basic
        // survivors (numerical leakage from other rows) shift from below
        let at_upper = !view.is_basic(col) && view.at_upper(col);
        let bound = if at_upper { sf.upper[col] } else { sf.lower[col] };
        if !bound.is_finite() {
            return None;
        }
        let int_shift = col < n_struct
            && integral[col]
            && bound.fract() == 0.0
            && bound.abs() < 9.0e15;
        base.push(BaseVar { col, coeff: a, bound, at_upper, int_shift });
    }
    if base.is_empty() {
        return None;
    }
    // b' = β − Σ αⱼ·boundⱼ ;  f₀ = frac(b')
    let mut bp = R::from_f64(beta)?;
    for v in &base {
        bp = bp.sub(&R::from_f64(v.coeff)?.mul(&R::from_f64(v.bound)?)?)?;
    }
    let f0 = bp.frac()?;
    if f0.is_zero() {
        return None;
    }
    let f0_f = f0.to_f64();
    if !(GOMORY_MIN_FRAC..=1.0 - GOMORY_MIN_FRAC).contains(&f0_f) {
        return None;
    }
    let ratio = f0.div(&R::ONE.sub(&f0)?)?;
    // per-variable GMI coefficient in shifted space, rounded outward into
    // the original space
    let mut cut: Vec<(usize, f64)> = Vec::new();
    for v in &base {
        let d = if v.at_upper {
            R::from_f64(v.coeff)?.neg()?
        } else {
            R::from_f64(v.coeff)?
        };
        let g = if v.int_shift {
            let fj = d.frac()?;
            fj.min(&ratio.mul(&R::ONE.sub(&fj)?)?)?
        } else if R::ZERO.le(&d)? {
            d
        } else {
            ratio.mul(&d.neg()?)?
        };
        let mag = f64_at_least(&g)?;
        let c = if v.at_upper { -mag } else { mag };
        if c != 0.0 {
            cut.push((v.col, c));
        }
    }
    // rhs: f₀ back-shifted by the recorded coefficients, rounded down
    let mut target = f0;
    for &(col, c) in &cut {
        let v = base.iter().find(|v| v.col == col).expect("cut var is a base var");
        target = target.add(&R::from_f64(c)?.mul(&R::from_f64(v.bound)?)?)?;
    }
    let cut_rhs = f64_at_most(&target)?;
    let proof = CutProof::Gomory {
        vars: base
            .iter()
            .map(|v| GomoryVar {
                var: v.col,
                coeff: v.coeff,
                bound: v.bound,
                integral: v.int_shift,
                at_upper: v.at_upper,
            })
            .collect(),
        base_rhs: beta,
        cut: cut.clone(),
        cut_rhs,
    };
    // substitute slacks (s_r = b_r − Σ a_rk·x_k, Ge rows sign-flipped in
    // standard form) to land the cut in model-variable space
    let nv = model.num_vars();
    let mut coefs = vec![0.0; nv];
    let mut rhs = cut_rhs;
    for &(col, c) in &cut {
        if col < n_struct {
            coefs[col] += c;
        } else {
            let con = &model.cons[col - n_struct];
            let sign = if matches!(con.cmp, Cmp::Ge) { -1.0 } else { 1.0 };
            rhs -= c * sign * con.rhs;
            for &(v, coef) in &con.expr.terms {
                coefs[v.0] -= c * sign * coef;
            }
        }
    }
    let norm: f64 = coefs.iter().map(|c| c.abs()).sum::<f64>() + rhs.abs();
    if !norm.is_finite() {
        return None;
    }
    let safe_rhs = rhs - RHS_MARGIN * (1.0 + norm);
    let lhs: f64 = coefs.iter().zip(x.iter()).map(|(c, xv)| c * xv).sum();
    let violation = safe_rhs - lhs;
    if violation < GOMORY_MIN_VIOLATION {
        return None;
    }
    let con = Constraint {
        expr: LinExpr::sum(
            coefs
                .iter()
                .enumerate()
                .filter(|&(_, c)| *c != 0.0)
                .map(|(v, &c)| (Var(v), c)),
        ),
        cmp: Cmp::Ge,
        rhs: safe_rhs,
    };
    let key = cut_key(&con);
    Some(CutCandidate { con, proof, key, violation, gomory: true })
}

// ---------------------------------------------------------------------------
// the root loop
// ---------------------------------------------------------------------------

/// Runs root-node separation rounds over `base`, returning the augmented
/// model, its re-solved LP optimum, and the surviving pool (see
/// [`RootCuts`]). Fully serial and deterministic; the caller freezes the
/// returned model for the whole tree.
pub(crate) fn separate_root(
    base: &Model,
    opts: &SolveOptions,
    relax: Solution,
    point: LpPoint,
) -> Result<RootCuts, SolveError> {
    // basis chaining across separation re-solves is internal machinery,
    // not the user-facing warm-start knob: forcing it on keeps the cut
    // pool (and thus the returned tied vertex) identical whether or not
    // the tree search warm-starts (`docs/SOLVER.md` § warm_start)
    let opts = &SolveOptions {
        warm_start: true,
        ..opts.clone()
    };
    let base_rows = base.cons.len();
    let mut model = base.clone();
    let mut relax = relax;
    let mut point = point;
    let mut active: Vec<ActiveCut> = Vec::new();
    let mut seen: BTreeSet<CutKey> = BTreeSet::new();
    let (mut gomory_generated, mut cover_generated) = (0usize, 0usize);
    let mut aged_out = 0usize;
    let mut total_pivots = relax.iterations;
    let mut total_tele = point.telemetry;

    for _round in 0..opts.cut_rounds {
        let budget = opts.max_cuts.saturating_sub(active.len());
        if budget == 0 {
            break;
        }
        let mut cands: Vec<CutCandidate> = Vec::new();
        cover_cuts_into(&model, 0..base_rows, &relax.values, &mut cands);
        if matches!(opts.engine, SimplexEngine::Revised) {
            gomory_cuts_into(&model, opts, &point, &mut cands);
        }
        for c in &cands {
            if c.gomory {
                gomory_generated += 1;
            } else {
                cover_generated += 1;
            }
        }
        cands.retain(|c| !seen.contains(&c.key));
        cands.sort_by(|a, b| a.key.cmp(&b.key));
        cands.dedup_by(|a, b| a.key == b.key);
        cands.sort_by(|a, b| {
            b.violation.total_cmp(&a.violation).then_with(|| a.key.cmp(&b.key))
        });
        cands.truncate(budget);
        if cands.is_empty() {
            break;
        }
        // append the round's cuts and warm re-solve from the extended
        // basis: each new row's slack column enters basic at its row
        let prev_obj = relax.objective;
        let ncols_old = point.basis.at_upper.len();
        let mut hint = point.basis.clone();
        for (i, cand) in cands.into_iter().enumerate() {
            hint.basic.push(ncols_old + i);
            hint.at_upper.push(false);
            seen.insert(cand.key.clone());
            active.push(ActiveCut { proof: cand.proof, key: cand.key, idle: 0 });
            model.cons.push(cand.con);
        }
        let (r2, p2) = solve_lp_relaxation_warm(&model, opts, Some(&hint))?;
        total_pivots += r2.iterations;
        total_tele.absorb(&p2.telemetry);
        relax = r2;
        point = p2;
        let stalled =
            (relax.objective - prev_obj).abs() <= STALL_TOL * (1.0 + prev_obj.abs());

        // aging: a cut slack at the re-solved vertex for CUT_AGE_ROUNDS
        // consecutive rounds leaves the pool
        for (i, a) in active.iter_mut().enumerate() {
            let con = &model.cons[base_rows + i];
            let lhs = con.expr.eval(&relax.values);
            let slack = match con.cmp {
                Cmp::Le => con.rhs - lhs,
                Cmp::Ge => lhs - con.rhs,
                Cmp::Eq => 0.0,
            };
            if slack > 1e-7 * (1.0 + con.rhs.abs()) {
                a.idle += 1;
            } else {
                a.idle = 0;
            }
        }
        let evict: Vec<usize> = active
            .iter()
            .enumerate()
            .filter(|(_, a)| a.idle >= CUT_AGE_ROUNDS)
            .map(|(i, _)| i)
            .collect();
        if !evict.is_empty() {
            let m_now = model.cons.len();
            let ncols_now = point.basis.at_upper.len();
            let n_struct = ncols_now - m_now;
            let removed_rows: BTreeSet<usize> =
                evict.iter().map(|&i| base_rows + i).collect();
            let removed_cols: BTreeSet<usize> =
                removed_rows.iter().map(|&r| n_struct + r).collect();
            // an optimal basis keeps every positive-slack column basic, so
            // deleting those rows+columns leaves a square basis; anything
            // else would mean the snapshot is stale — keep the cuts then
            if removed_cols.iter().all(|j| point.basis.basic.contains(j)) {
                let remap = |j: usize| {
                    if j < n_struct {
                        j
                    } else {
                        let r = j - n_struct;
                        n_struct + r - removed_rows.range(..r).count()
                    }
                };
                let mut hint = crate::simplex::Basis {
                    basic: point
                        .basis
                        .basic
                        .iter()
                        .filter(|j| !removed_cols.contains(j))
                        .map(|&j| remap(j))
                        .collect(),
                    at_upper: point
                        .basis
                        .at_upper
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| !removed_cols.contains(j))
                        .map(|(_, &u)| u)
                        .collect(),
                };
                hint.basic.sort_unstable();
                let mut kept_cons = Vec::with_capacity(m_now - removed_rows.len());
                for (r, con) in model.cons.drain(..).enumerate() {
                    if !removed_rows.contains(&r) {
                        kept_cons.push(con);
                    }
                }
                model.cons = kept_cons;
                for &i in evict.iter().rev() {
                    active.remove(i);
                }
                aged_out += evict.len();
                let (r3, p3) = solve_lp_relaxation_warm(&model, opts, Some(&hint))?;
                total_pivots += r3.iterations;
                total_tele.absorb(&p3.telemetry);
                relax = r3;
                point = p3;
            }
        }
        if stalled {
            break;
        }
    }

    relax.iterations = total_pivots;
    point.telemetry = total_tele;
    Ok(RootCuts {
        proofs: active.iter().map(|a| a.proof.clone()).collect(),
        keys: active.iter().map(|a| a.key.clone()).collect(),
        model,
        relax,
        point,
        gomory_generated,
        cover_generated,
        aged_out,
    })
}

/// Separates violated cover cuts at a tree node's LP point, against the
/// *root* binary bounds (node overrides may fix members without affecting
/// validity). Returns candidates sorted by violation; the caller dedups
/// against the root pool and ancestor cuts, then truncates to its budget.
pub(crate) fn node_cover_cuts(
    root_model: &Model,
    base_rows: usize,
    values: &[f64],
) -> Vec<CutCandidate> {
    let mut out = Vec::new();
    cover_cuts_into(root_model, 0..base_rows, values, &mut out);
    out.sort_by(|a, b| {
        b.violation.total_cmp(&a.violation).then_with(|| a.key.cmp(&b.key))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn r(x: f64) -> R {
        R::from_f64(x).expect("representable")
    }

    #[test]
    fn rational_round_trip_and_ops() {
        assert_eq!(r(0.5), R { n: 1, d: 2 });
        assert_eq!(r(-2.25).frac().unwrap(), R { n: 3, d: 4 });
        assert_eq!(r(1.5).add(&r(0.25)).unwrap(), r(1.75));
        assert_eq!(r(1.0).div(&r(3.0)).unwrap(), R { n: 1, d: 3 });
        assert_eq!(r(7.0).floor(), r(7.0));
        assert!(r(0.1).to_f64() - 0.1 == 0.0); // exact dyadic of the f64 0.1
        assert!(R::from_f64(f64::NAN).is_none());
    }

    #[test]
    fn directed_rounding_brackets_exact_value() {
        // 1/3 is not a dyadic rational: at_least must round up, at_most down
        let third = R { n: 1, d: 3 };
        let up = f64_at_least(&third).unwrap();
        let down = f64_at_most(&third).unwrap();
        assert!(third.le(&R::from_f64(up).unwrap()).unwrap());
        assert!(R::from_f64(down).unwrap().le(&third).unwrap());
        assert!(down < up, "1/3 is not dyadic, so the bracket is strict");
        // exactly representable values pass through unchanged
        assert_eq!(f64_at_least(&r(0.75)).unwrap(), 0.75);
        assert_eq!(f64_at_most(&r(0.75)).unwrap(), 0.75);
    }

    fn knapsack() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.binary("x");
        let y = m.binary("y");
        let z = m.binary("z");
        m.add_con(
            LinExpr::new().term(x, 3.0).term(y, 2.0).term(z, 2.0),
            Cmp::Le,
            4.0,
        );
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 2.0).term(z, 1.5));
        m
    }

    #[test]
    fn cover_separation_finds_minimal_violated_cover() {
        let m = knapsack();
        let mut out = Vec::new();
        cover_cuts_into(&m, 0..1, &[1.0, 0.9, 0.1], &mut out);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert!(!c.gomory);
        // greedy picks x then y (3 + 2 > 4), already minimal
        match &c.proof {
            CutProof::Cover { members, rhs, .. } => {
                assert_eq!(members, &vec![0, 1]);
                assert_eq!(*rhs, 4.0);
            }
            _ => panic!("expected a cover proof"),
        }
        assert_eq!(c.con.rhs, 1.0);
        assert!((c.violation - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cover_separation_skips_satisfied_rows_and_non_binary() {
        let m = knapsack();
        let mut out = Vec::new();
        // integral point: no violated cover exists
        cover_cuts_into(&m, 0..1, &[1.0, 0.0, 0.0], &mut out);
        assert!(out.is_empty());
        // non-binary variable disqualifies the row
        let mut m2 = Model::new(Sense::Maximize);
        let x = m2.int_var("x", 0.0, 2.0);
        let y = m2.binary("y");
        m2.add_con(LinExpr::new().term(x, 3.0).term(y, 2.0), Cmp::Le, 4.0);
        cover_cuts_into(&m2, 0..1, &[0.9, 0.9], &mut out);
        assert!(out.is_empty());
    }

    /// Brute-force check: every integer-feasible point of the model
    /// satisfies every cut row appended beyond `base_rows`.
    fn assert_cuts_valid(model: &Model, base_rows: usize) {
        let n = model.num_vars();
        assert!(n <= 16, "brute force only for tiny models");
        let bounds: Vec<(i64, i64)> = model
            .vars
            .iter()
            .map(|v| (v.lower.ceil() as i64, v.upper.floor() as i64))
            .collect();
        let mut point = vec![0.0; n];
        let mut idx = vec![0i64; n];
        for (i, &(lo, _)) in bounds.iter().enumerate() {
            idx[i] = lo;
        }
        'all: loop {
            for i in 0..n {
                point[i] = idx[i] as f64;
            }
            let feasible = model.cons[..base_rows].iter().all(|c| {
                let lhs = c.expr.eval(&point);
                match c.cmp {
                    Cmp::Le => lhs <= c.rhs + 1e-9,
                    Cmp::Ge => lhs >= c.rhs - 1e-9,
                    Cmp::Eq => (lhs - c.rhs).abs() <= 1e-9,
                }
            });
            if feasible {
                for c in &model.cons[base_rows..] {
                    let lhs = c.expr.eval(&point);
                    let ok = match c.cmp {
                        Cmp::Le => lhs <= c.rhs + 1e-9,
                        Cmp::Ge => lhs >= c.rhs - 1e-9,
                        Cmp::Eq => (lhs - c.rhs).abs() <= 1e-9,
                    };
                    assert!(ok, "cut {c:?} cuts off integer point {point:?}");
                }
            }
            // odometer
            for i in 0..n {
                idx[i] += 1;
                if idx[i] <= bounds[i].1 {
                    continue 'all;
                }
                idx[i] = bounds[i].0;
            }
            break;
        }
    }

    /// A 2-var model whose LP optimum is fractional: max x+y st
    /// 2x + 2y <= 5 → LP vertex hits 2.5, integer optimum 2.
    fn fractional_pair() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        m
    }

    #[test]
    fn gomory_cut_is_violated_by_vertex_and_valid_for_integers() {
        let m = fractional_pair();
        let opts = SolveOptions::default();
        let (relax, point) = solve_lp_relaxation_warm(&m, &opts, None).unwrap();
        assert!((relax.objective - 2.5).abs() < 1e-6);
        let mut out = Vec::new();
        gomory_cuts_into(&m, &opts, &point, &mut out);
        assert!(!out.is_empty(), "fractional basic integer row must separate");
        let mut cut_model = m.clone();
        for c in &out {
            // violated at the LP vertex
            let lhs = c.con.expr.eval(&relax.values);
            assert!(lhs < c.con.rhs - 1e-4, "cut not violated at vertex");
            assert!(c.gomory);
            cut_model.cons.push(c.con.clone());
        }
        assert_cuts_valid(&cut_model, m.cons.len());
    }

    #[test]
    fn separate_root_tightens_bound_and_is_deterministic() {
        let m = fractional_pair();
        let opts = SolveOptions::default();
        let run = || {
            let (relax, point) = solve_lp_relaxation_warm(&m, &opts, None).unwrap();
            separate_root(&m, &opts, relax, point).unwrap()
        };
        let a = run();
        // the GMI cut from x+y = 2.5 closes the gap to the integer hull
        assert!(a.relax.objective <= 2.5 - 1e-4, "bound must tighten");
        assert!(!a.proofs.is_empty());
        assert_eq!(a.model.cons.len(), m.cons.len() + a.proofs.len());
        assert_cuts_valid(&a.model, m.cons.len());
        let b = run();
        assert_eq!(a.proofs, b.proofs, "root pool must be bitwise reproducible");
        assert_eq!(a.relax.objective.to_bits(), b.relax.objective.to_bits());
    }

    #[test]
    fn separate_root_respects_budget() {
        let m = knapsack();
        let opts = SolveOptions {
            max_cuts: 0,
            ..SolveOptions::default()
        };
        let (relax, point) = solve_lp_relaxation_warm(&m, &opts, None).unwrap();
        let rc = separate_root(&m, &opts, relax, point).unwrap();
        assert!(rc.proofs.is_empty());
        assert_eq!(rc.model.cons.len(), m.cons.len());
    }
}
