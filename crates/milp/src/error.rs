//! Solver error/status types.

use std::fmt;

/// Terminal failure modes of the LP/MILP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The simplex iteration limit was exceeded (likely numerical trouble).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Branch & bound exhausted its node budget before proving optimality.
    NodeLimit {
        /// Nodes explored.
        nodes: usize,
        /// Best integer-feasible objective found so far, if any.
        incumbent: Option<f64>,
    },
    /// The model is malformed (bad bounds, NaN coefficients, ...).
    BadModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "problem is unbounded"),
            SolveError::IterationLimit { iterations } => {
                write!(f, "simplex exceeded iteration limit ({iterations})")
            }
            SolveError::NodeLimit { nodes, incumbent } => write!(
                f,
                "branch & bound exceeded node limit ({nodes} nodes, incumbent {incumbent:?})"
            ),
            SolveError::BadModel(msg) => write!(f, "bad model: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert!(SolveError::NodeLimit {
            nodes: 5,
            incumbent: Some(1.0)
        }
        .to_string()
        .contains("5 nodes"));
        assert!(SolveError::BadModel("x".into()).to_string().contains("x"));
    }
}
