//! Linear expressions over model variables.

use std::collections::HashMap;

/// Handle to a model variable. Cheap to copy; only valid for the
/// [`crate::Model`] that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Column index of the variable inside its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `Σ coef_k · var_k + constant`.
///
/// Built fluently: `LinExpr::new().term(x, 3.0).term(y, -1.0).plus(2.0)`.
/// Duplicate variables are allowed and folded by [`LinExpr::compact`] (and
/// automatically when the expression enters a model).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` pairs, possibly with repeats.
    pub terms: Vec<(Var, f64)>,
    /// Additive constant.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// An expression consisting of a single variable with coefficient 1.
    pub fn var(v: Var) -> Self {
        LinExpr::new().term(v, 1.0)
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Appends `coef * v`.
    pub fn term(mut self, v: Var, coef: f64) -> Self {
        self.terms.push((v, coef));
        self
    }

    /// Adds a constant.
    pub fn plus(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// Adds another expression.
    pub fn add_expr(mut self, other: &LinExpr) -> Self {
        self.terms.extend_from_slice(&other.terms);
        self.constant += other.constant;
        self
    }

    /// Multiplies the whole expression by a scalar.
    pub fn scale(mut self, s: f64) -> Self {
        for (_, c) in &mut self.terms {
            *c *= s;
        }
        self.constant *= s;
        self
    }

    /// Sum of `coef * var` over an iterator — handy for Σ-style constraints.
    pub fn sum(items: impl IntoIterator<Item = (Var, f64)>) -> Self {
        LinExpr {
            terms: items.into_iter().collect(),
            constant: 0.0,
        }
    }

    /// Folds duplicate variables and drops zero coefficients.
    pub fn compact(&self) -> LinExpr {
        let mut map: HashMap<Var, f64> = HashMap::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            *map.entry(v).or_insert(0.0) += c;
        }
        let mut terms: Vec<(Var, f64)> =
            map.into_iter().filter(|&(_, c)| c != 0.0).collect();
        terms.sort_unstable_by_key(|&(v, _)| v);
        LinExpr {
            terms,
            constant: self.constant,
        }
    }

    /// Evaluates the expression on an assignment (indexed by variable).
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * assignment[v.0])
                .sum::<f64>()
    }

    /// Largest variable index referenced, or `None` for constants.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.iter().map(|&(v, _)| v.0).max()
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::var(v)
    }
}

impl std::ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        self.add_expr(&rhs)
    }
}

impl std::ops::Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluent_construction_and_eval() {
        let x = Var(0);
        let y = Var(1);
        let e = LinExpr::new().term(x, 3.0).term(y, -1.0).plus(2.0);
        assert_eq!(e.eval(&[1.0, 4.0]), 3.0 - 4.0 + 2.0);
    }

    #[test]
    fn compact_folds_duplicates_and_drops_zeros() {
        let x = Var(0);
        let y = Var(1);
        let e = LinExpr::new()
            .term(x, 1.0)
            .term(y, 2.0)
            .term(x, -1.0)
            .term(y, 0.5);
        let c = e.compact();
        assert_eq!(c.terms, vec![(y, 2.5)]);
    }

    #[test]
    fn sum_and_operators() {
        let vars = [Var(0), Var(1), Var(2)];
        let e = LinExpr::sum(vars.iter().map(|&v| (v, 2.0)));
        assert_eq!(e.eval(&[1.0, 1.0, 1.0]), 6.0);
        let f = (e + LinExpr::constant(1.0)) * 2.0;
        assert_eq!(f.eval(&[1.0, 1.0, 1.0]), 14.0);
    }

    #[test]
    fn scale_touches_constant() {
        let e = LinExpr::var(Var(0)).plus(3.0).scale(-2.0);
        assert_eq!(e.constant, -6.0);
        assert_eq!(e.terms[0].1, -2.0);
    }

    #[test]
    fn max_var_reports_width() {
        assert_eq!(LinExpr::constant(1.0).max_var(), None);
        assert_eq!(
            LinExpr::new().term(Var(4), 1.0).term(Var(2), 1.0).max_var(),
            Some(4)
        );
    }
}
