//! An exact mixed-integer linear programming (MILP) solver, from scratch.
//!
//! This crate stands in for the GAMS + CPLEX stack the paper used to solve
//! its scheduling formulation. It provides:
//!
//! * a [`Model`] builder with continuous, integer and binary variables,
//!   linear constraints and a linear objective,
//! * a **sparse revised simplex** LP engine ([`revised`]): LU-factorized
//!   basis ([`lu`]) with eta updates, BTRAN/FTRAN solves and partial
//!   pricing over the CSC constraint matrix, with dual-simplex **warm
//!   starts** that refactorize a parent [`Basis`] directly,
//! * a bounded-variable, two-phase primal **simplex** on a dense tableau
//!   ([`simplex`]), kept as the differential oracle behind
//!   [`SimplexEngine::DenseTableau`],
//! * **branch & bound** with best-first node selection,
//!   most-fractional branching and optional multi-threaded search
//!   ([`branch`]; see [`SolveOptions::threads`]),
//! * solver **telemetry** — node/prune/pivot counters, the incumbent
//!   timeline and per-phase wall times ([`SolveStats`], returned in every
//!   [`Solution`]),
//! * a brute-force enumeration oracle ([`brute`]) used by the test suite to
//!   certify optimality on small instances.
//!
//! The solver is exact (optimality gap 0) on the instances produced by the
//! in-situ scheduling formulation; it is not intended to compete with
//! commercial solvers on industrial LPs. The determinism contract (serial
//! runs are bitwise reproducible; parallel runs return the identical
//! optimum) is documented in `docs/SOLVER.md` and in [`branch`].
//!
//! # Relation to the paper (Eqs. 1–9)
//!
//! The SC '15 formulation reaches this crate through `insitu-core`:
//!
//! * **Eq. 1** (weighted analysis value) becomes the linear objective via
//!   [`Model::set_objective`];
//! * **Eqs. 2–4** (compute/output time recursion and the time threshold)
//!   telescope into a single `<=` row per instance
//!   ([`Model::add_con`] with [`Cmp::Le`]);
//! * **Eqs. 5–8** (memory recursion and the memory threshold) become
//!   either unary-expansion rows or a conservative peak bound, again
//!   plain linear rows;
//! * **Eq. 9** (interval constraint) becomes integer variable bounds
//!   ([`Model::int_var`]).
//!
//! So the whole paper formulation is expressible as `max c·x, A x <= b`
//! with integrality — exactly what [`solve`] accepts.
//!
//! # Example
//!
//! ```
//! use milp::{Model, Sense, Cmp, solve, SolveOptions};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y integer >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.int_var("x", 0.0, 2.0);
//! let y = m.int_var("y", 0.0, f64::INFINITY);
//! m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 4.0);
//! m.set_objective(LinExpr::new().term(x, 3.0).term(y, 2.0));
//! let sol = solve(&m, &SolveOptions::default()).unwrap();
//! assert_eq!(sol.objective.round(), 10.0); // x=2, y=2
//! # use milp::LinExpr;
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod brute;
mod cuts;
pub mod error;
pub mod expr;
pub mod lu;
pub mod model;
pub mod options;
pub mod presolve;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod standard;
pub mod stats;
pub mod trace;

pub use branch::{solve, solve_with_hint};
pub use error::SolveError;
pub use expr::{LinExpr, Var};
pub use model::{Cmp, Model, Sense, VarKind};
pub use options::{BranchRule, CutPolicy, SimplexEngine, SolveOptions};
pub use presolve::{presolve, PresolveStats};
pub use simplex::{solve_lp_relaxation, Basis};
pub use solution::Solution;
pub use stats::{CutStats, IncumbentEvent, LpTelemetry, SolveStats};
pub use trace::{SearchTrace, TraceNode, SEARCHTRACE_SCHEMA};
