//! Sparse LU factorization of a simplex basis, with eta-file updates.
//!
//! The revised simplex engine ([`crate::revised`]) never forms `B⁻¹`
//! explicitly. Instead it keeps
//!
//! * an **LU factorization** `Pr · B · Pc = L · U` of the basis matrix,
//!   computed left-looking with **Markowitz-style pivoting**: columns are
//!   processed in ascending nonzero count, and within a column the pivot
//!   row is chosen among numerically acceptable candidates (threshold
//!   `|x_r| ≥ 0.1 · max`) as the one with the fewest nonzeros in the
//!   basis — trading a bounded amount of stability for fill-in control;
//! * an **eta file**: a product-form update per basis exchange, so a pivot
//!   costs `O(nnz)` instead of a refactorization. The file is folded back
//!   into a fresh LU every [`crate::SolveOptions::refactor_interval`]
//!   pivots (and on demand, e.g. after a warm start).
//!
//! Two solve directions are exposed, both allocation-free after
//! construction (callers pass scratch buffers):
//!
//! * **FTRAN** — `B w = v`, used for the entering column in the ratio
//!   test and for recomputing the basic-variable values;
//! * **BTRAN** — `Bᵀ y = c`, used for the pricing duals and for the
//!   dual-simplex row `eᵣᵀ B⁻¹ A`.

/// Lower/upper triangular factors of one basis, plus the row/column
/// permutations chosen during elimination.
///
/// Index spaces (the comments in the solves refer to these):
/// * *orig rows* — constraint-row indices of the standard form,
/// * *basis positions* — indices into the `basis` vector (which column is
///   basic "in position k"),
/// * *pivot sequence* — the order `0..m` in which elimination happened.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// L columns per pivot step: `(orig_row, value)` below the unit
    /// diagonal; rows stored here are pivot rows of *later* steps.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// U columns per pivot step: `(earlier_step, value)` above the
    /// diagonal, in pivot-sequence row space.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// U diagonal per pivot step.
    u_diag: Vec<f64>,
    /// `pivot_row[k]` = orig row eliminated at step `k`.
    pivot_row: Vec<usize>,
    /// Inverse of `pivot_row`.
    pos_of_row: Vec<usize>,
    /// `order[k]` = basis position whose column was eliminated at step `k`.
    order: Vec<usize>,
}

/// One product-form update: basis position `r` was replaced by a column
/// whose FTRAN image was `w` (`B⁻¹ a_enter`), pivot element `w[r]`.
#[derive(Debug, Clone)]
struct Eta {
    /// Basis position that changed.
    r: usize,
    /// `w[r]` — the pivot element.
    pivot: f64,
    /// Remaining nonzeros of `w` (basis position, value), excluding `r`.
    col: Vec<(usize, f64)>,
}

/// Absolute singularity threshold for pivot elements.
const SINGULAR_TOL: f64 = 1e-11;
/// Relative threshold for Markowitz candidate pivots.
const PIVOT_REL_TOL: f64 = 0.1;

/// LU factors plus the eta file accumulated since the last
/// refactorization.
#[derive(Debug, Clone)]
pub struct Factorization {
    lu: LuFactors,
    etas: Vec<Eta>,
}

impl LuFactors {
    /// Factorizes the basis whose columns (in basis-position order) are
    /// given sparsely as `(row, value)` lists. Returns `None` when the
    /// matrix is numerically singular.
    pub fn factor(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<LuFactors> {
        debug_assert_eq!(cols.len(), m);
        // Markowitz-style static column ordering: sparsest columns first
        // (ties by position for determinism).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&q| (cols[q].len(), q));
        // row counts over the basis, for the sparsity-aware pivot choice
        let mut row_count = vec![0usize; m];
        for col in cols {
            for &(r, _) in col {
                row_count[r] += 1;
            }
        }
        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);
        let mut pivot_row = Vec::with_capacity(m);
        let mut pos_of_row = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m]; // dense accumulator, reset per column
        let mut touched: Vec<usize> = Vec::with_capacity(16);
        for (k, &q) in order.iter().enumerate() {
            // x = B[:, q]
            for &(r, v) in &cols[q] {
                if x[r] == 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // left-looking elimination: apply every earlier pivot in order
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            for (t, lcol) in l_cols.iter().enumerate().take(k) {
                let ut = x[pivot_row[t]];
                if ut == 0.0 {
                    continue;
                }
                ucol.push((t, ut));
                for &(r, lv) in lcol {
                    if x[r] == 0.0 {
                        touched.push(r);
                    }
                    x[r] -= ut * lv;
                }
            }
            // pivot choice among rows not yet assigned: threshold partial
            // pivoting with a Markowitz sparsity tie-break
            let mut amax = 0.0f64;
            for &r in &touched {
                if pos_of_row[r] == usize::MAX {
                    amax = amax.max(x[r].abs());
                }
            }
            if amax <= SINGULAR_TOL {
                return None; // structurally or numerically singular
            }
            let mut best: Option<(usize, usize)> = None; // (row_count, row)
            for &r in &touched {
                if pos_of_row[r] == usize::MAX && x[r].abs() >= PIVOT_REL_TOL * amax {
                    let key = (row_count[r], r);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let (_, prow) = best.expect("amax > 0 implies a candidate");
            let pivot = x[prow];
            let inv = 1.0 / pivot;
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            // deterministic L column order: ascending orig row (dedup: a
            // row can be pushed twice when an update underflows to zero)
            touched.sort_unstable();
            touched.dedup();
            for &r in &touched {
                if r != prow && pos_of_row[r] == usize::MAX && x[r] != 0.0 {
                    lcol.push((r, x[r] * inv));
                }
            }
            for &r in &touched {
                x[r] = 0.0;
            }
            touched.clear();
            pos_of_row[prow] = k;
            pivot_row.push(prow);
            u_diag.push(pivot);
            u_cols.push(ucol);
            l_cols.push(lcol);
        }
        Some(LuFactors {
            m,
            l_cols,
            u_cols,
            u_diag,
            pivot_row,
            pos_of_row,
            order,
        })
    }

    /// Solves `B w = v`. `v` is in orig-row space (consumed as scratch);
    /// `w` is written in basis-position space.
    fn ftran(&self, v: &mut [f64], w: &mut [f64]) {
        // forward solve L y = Pr v (y overwrites v at pivot-row slots)
        for (t, lcol) in self.l_cols.iter().enumerate() {
            let yt = v[self.pivot_row[t]];
            if yt == 0.0 {
                continue;
            }
            for &(r, lv) in lcol {
                v[r] -= yt * lv;
            }
        }
        // back solve U t = y (columns of U, pivot-sequence space)
        for k in (0..self.m).rev() {
            let tk = v[self.pivot_row[k]] / self.u_diag[k];
            w[self.order[k]] = tk;
            if tk == 0.0 {
                continue;
            }
            for &(t, uv) in &self.u_cols[k] {
                v[self.pivot_row[t]] -= tk * uv;
            }
        }
    }

    /// Solves `Bᵀ y = c`. `c` is in basis-position space (consumed as
    /// scratch); `y` is written in orig-row space.
    fn btran(&self, c: &mut [f64], y: &mut [f64], g: &mut [f64]) {
        // forward solve Uᵀ g = Pcᵀ c (Uᵀ is lower triangular in pivot
        // sequence space; u_cols gives exactly the column needed)
        for k in 0..self.m {
            let mut s = c[self.order[k]];
            for &(t, uv) in &self.u_cols[k] {
                s -= uv * g[t];
            }
            g[k] = s / self.u_diag[k];
        }
        // back solve Lᵀ h = g in place (rows of l_cols[k] live at later
        // pivot steps, so descending k sees finished values)
        for k in (0..self.m).rev() {
            let mut s = g[k];
            for &(r, lv) in &self.l_cols[k] {
                s -= lv * g[self.pos_of_row[r]];
            }
            g[k] = s;
            y[self.pivot_row[k]] = s;
        }
    }

    /// Total nonzeros in L and U (diagnostics).
    pub fn fill(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.m
    }
}

impl Factorization {
    /// Wraps fresh LU factors with an empty eta file.
    pub fn new(lu: LuFactors) -> Self {
        Factorization {
            lu,
            etas: Vec::new(),
        }
    }

    /// Number of etas accumulated since the last refactorization.
    pub fn eta_len(&self) -> usize {
        self.etas.len()
    }

    /// Solves `B w = v` through the LU factors and the eta file.
    /// `v` (orig-row space) is consumed as scratch; `w` receives the
    /// result in basis-position space.
    pub fn ftran(&self, v: &mut [f64], w: &mut [f64]) {
        self.lu.ftran(v, w);
        for e in &self.etas {
            let xr = w[e.r] / e.pivot;
            if xr != 0.0 {
                for &(i, ev) in &e.col {
                    w[i] -= ev * xr;
                }
            }
            w[e.r] = xr;
        }
    }

    /// Solves `Bᵀ y = c`. `c` (basis-position space) and `g` are consumed
    /// as scratch; `y` receives the result in orig-row space.
    pub fn btran(&self, c: &mut [f64], y: &mut [f64], g: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let mut s = c[e.r];
            for &(i, ev) in &e.col {
                s -= ev * c[i];
            }
            c[e.r] = s / e.pivot;
        }
        self.lu.btran(c, y, g);
    }

    /// Records the basis exchange "position `r` now holds the column whose
    /// FTRAN image is `w`". Returns `false` when the pivot element is too
    /// small to update stably — the caller must refactorize instead.
    pub fn push_eta(&mut self, r: usize, w: &[f64]) -> bool {
        let pivot = w[r];
        if pivot.abs() <= SINGULAR_TOL {
            return false;
        }
        let col: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, pivot, col });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference multiply `B x` for the sparse column set.
    fn mul(m: usize, cols: &[Vec<(usize, f64)>], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * x[j];
            }
        }
        out
    }

    fn mul_t(m: usize, cols: &[Vec<(usize, f64)>], y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[j] += v * y[r];
            }
        }
        out
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-8, "{a:?} vs {b:?}");
        }
    }

    /// A deterministic pseudo-random sparse nonsingular matrix: diagonal
    /// dominance guarantees invertibility.
    fn random_cols(m: usize, seed: u64) -> Vec<Vec<(usize, f64)>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..m)
            .map(|j| {
                let mut col = vec![(j, m as f64 + 1.0 + (next() % 7) as f64)];
                for _ in 0..(next() % 3) {
                    let r = (next() as usize) % m;
                    if col.iter().all(|&(rr, _)| rr != r) {
                        col.push((r, ((next() % 9) as f64) - 4.0));
                    }
                }
                col.sort_unstable_by_key(|&(r, _)| r);
                col
            })
            .collect()
    }

    #[test]
    fn ftran_btran_round_trip() {
        for seed in [1u64, 7, 42, 1234] {
            let m = 9;
            let cols = random_cols(m, seed);
            let lu = LuFactors::factor(m, &cols).expect("nonsingular");
            let fac = Factorization::new(lu);
            let x_true: Vec<f64> = (0..m).map(|i| (i as f64) - 3.5).collect();
            // FTRAN: solve B w = B x_true => w == x_true
            let mut v = mul(m, &cols, &x_true);
            let mut w = vec![0.0; m];
            fac.ftran(&mut v, &mut w);
            assert_close(&w, &x_true);
            // BTRAN: solve B^T y = B^T y_true => y == y_true
            let mut c = mul_t(m, &cols, &x_true);
            let mut y = vec![0.0; m];
            let mut g = vec![0.0; m];
            fac.btran(&mut c, &mut y, &mut g);
            assert_close(&y, &x_true);
        }
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let m = 7;
        let mut cols = random_cols(m, 99);
        let lu = LuFactors::factor(m, &cols).expect("nonsingular");
        let mut fac = Factorization::new(lu);
        // replace column 2 with a new sparse column via an eta update
        let new_col = vec![(0, 1.5), (2, 9.0), (5, -2.0)];
        let mut v = vec![0.0; m];
        for &(r, val) in &new_col {
            v[r] = val;
        }
        let mut w = vec![0.0; m];
        fac.ftran(&mut v, &mut w);
        assert!(fac.push_eta(2, &w));
        assert_eq!(fac.eta_len(), 1);
        cols[2] = new_col;
        // solves through (LU + eta) must match a fresh factorization
        let fresh = Factorization::new(LuFactors::factor(m, &cols).unwrap());
        let x_true: Vec<f64> = (0..m).map(|i| 0.25 * (i as f64) + 1.0).collect();
        let (mut v1, mut v2) = (mul(m, &cols, &x_true), mul(m, &cols, &x_true));
        let (mut w1, mut w2) = (vec![0.0; m], vec![0.0; m]);
        fac.ftran(&mut v1, &mut w1);
        fresh.ftran(&mut v2, &mut w2);
        assert_close(&w1, &w2);
        let (mut c1, mut c2) = (mul_t(m, &cols, &x_true), mul_t(m, &cols, &x_true));
        let (mut y1, mut y2) = (vec![0.0; m], vec![0.0; m]);
        let mut g = vec![0.0; m];
        fac.btran(&mut c1, &mut y1, &mut g);
        fresh.btran(&mut c2, &mut y2, &mut g);
        assert_close(&y1, &y2);
    }

    #[test]
    fn singular_matrix_rejected() {
        // two identical columns
        let cols = vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 1.0), (1, 2.0)]];
        assert!(LuFactors::factor(2, &cols).is_none());
        // a structurally empty column
        let cols = vec![vec![(0, 1.0)], vec![]];
        assert!(LuFactors::factor(2, &cols).is_none());
    }

    #[test]
    fn empty_basis_is_fine() {
        let lu = LuFactors::factor(0, &[]).expect("empty is nonsingular");
        let fac = Factorization::new(lu);
        let (mut v, mut w) = (vec![], vec![]);
        fac.ftran(&mut v, &mut w);
        assert_eq!(fac.eta_len(), 0);
    }

    #[test]
    fn tiny_eta_pivot_refused() {
        let lu = LuFactors::factor(1, &[vec![(0, 1.0)]]).unwrap();
        let mut fac = Factorization::new(lu);
        assert!(!fac.push_eta(0, &[1e-13]));
        assert_eq!(fac.eta_len(), 0);
    }

    #[test]
    fn permuted_identity_with_fill() {
        // an arrowhead matrix: classic fill-in test for ordering
        let m = 6;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::new();
        for j in 0..m {
            let mut col = vec![(j, 4.0)];
            if j > 0 {
                col.insert(0, (0, 1.0));
            }
            cols.push(col);
        }
        let lu = LuFactors::factor(m, &cols).expect("nonsingular");
        let fac = Factorization::new(lu);
        let x_true = vec![1.0, -1.0, 2.0, -2.0, 3.0, -3.0];
        let mut v = {
            let mut out = vec![0.0; m];
            for (j, col) in cols.iter().enumerate() {
                for &(r, val) in col {
                    out[r] += val * x_true[j];
                }
            }
            out
        };
        let mut w = vec![0.0; m];
        fac.ftran(&mut v, &mut w);
        assert_close(&w, &x_true);
    }
}
