//! The MILP model builder.

use crate::error::SolveError;
use crate::expr::{LinExpr, Var};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
}

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued.
    Continuous,
    /// Integer-valued (bounds still apply).
    Integer,
}

/// Variable metadata.
#[derive(Debug, Clone)]
pub struct VarData {
    /// Diagnostic name.
    pub name: String,
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
    /// Continuous or integer.
    pub kind: VarKind,
}

/// One linear constraint `expr cmp rhs` (constant folded into rhs).
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side, compacted, constant already moved to `rhs`.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// Build the model incrementally — add variables, then constraints, then
/// the objective — and hand it to [`crate::solve`].
///
/// # Examples
///
/// ```
/// use milp::{Cmp, LinExpr, Model, Sense};
///
/// // maximize x + 2y  s.t.  x + y <= 3,  x binary,  0 <= y <= 2 integer
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.binary("x");
/// let y = m.int_var("y", 0.0, 2.0);
/// m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 3.0);
/// m.set_objective(LinExpr::new().term(x, 1.0).term(y, 2.0));
/// assert_eq!(m.num_vars(), 2);
/// assert!(m.is_feasible(&[1.0, 2.0], 1e-9));
/// assert_eq!(m.objective_value(&[1.0, 2.0]), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    /// Optimization direction.
    pub sense: Sense,
    /// Variables in creation order; [`Var`] indexes into this.
    pub vars: Vec<VarData>,
    /// Constraints in creation order.
    pub cons: Vec<Constraint>,
    /// Objective expression (constant included in reported objective).
    pub objective: LinExpr,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    fn push_var(&mut self, name: &str, lower: f64, upper: f64, kind: VarKind) -> Var {
        self.vars.push(VarData {
            name: name.to_string(),
            lower,
            upper,
            kind,
        });
        Var(self.vars.len() - 1)
    }

    /// Adds a continuous variable with bounds `[lower, upper]`.
    pub fn num_var(&mut self, name: &str, lower: f64, upper: f64) -> Var {
        self.push_var(name, lower, upper, VarKind::Continuous)
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn int_var(&mut self, name: &str, lower: f64, upper: f64) -> Var {
        self.push_var(name, lower, upper, VarKind::Integer)
    }

    /// Adds a binary (0/1) variable.
    pub fn binary(&mut self, name: &str) -> Var {
        self.push_var(name, 0.0, 1.0, VarKind::Integer)
    }

    /// Adds the constraint `expr cmp rhs`; the expression's constant is
    /// folded into the right-hand side. Returns the constraint index.
    pub fn add_con(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) -> usize {
        let compact = expr.compact();
        let constant = compact.constant;
        self.cons.push(Constraint {
            expr: LinExpr {
                terms: compact.terms,
                constant: 0.0,
            },
            cmp,
            rhs: rhs - constant,
        });
        self.cons.len() - 1
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, expr: LinExpr) {
        self.objective = expr.compact();
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Indices of integer variables.
    pub fn integer_vars(&self) -> Vec<usize> {
        (0..self.vars.len())
            .filter(|&i| self.vars[i].kind == VarKind::Integer)
            .collect()
    }

    /// Checks structural sanity: finite coefficients, bounds ordered,
    /// variable references in range.
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(SolveError::BadModel(format!("var {} has NaN bound", v.name)));
            }
            if v.lower > v.upper {
                return Err(SolveError::BadModel(format!(
                    "var {} (#{i}) has lower {} > upper {}",
                    v.name, v.lower, v.upper
                )));
            }
        }
        let width = self.vars.len();
        let check_expr = |e: &LinExpr, what: &str| -> Result<(), SolveError> {
            for &(v, c) in &e.terms {
                if v.0 >= width {
                    return Err(SolveError::BadModel(format!(
                        "{what} references unknown var #{}",
                        v.0
                    )));
                }
                if !c.is_finite() {
                    return Err(SolveError::BadModel(format!(
                        "{what} has non-finite coefficient {c}"
                    )));
                }
            }
            Ok(())
        };
        check_expr(&self.objective, "objective")?;
        for (k, c) in self.cons.iter().enumerate() {
            check_expr(&c.expr, &format!("constraint #{k}"))?;
            if !c.rhs.is_finite() {
                return Err(SolveError::BadModel(format!("constraint #{k} rhs not finite")));
            }
        }
        Ok(())
    }

    /// True when `assignment` satisfies every constraint and bound to
    /// within `tol`, with integer variables integral to within `tol`.
    pub fn is_feasible(&self, assignment: &[f64], tol: f64) -> bool {
        if assignment.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            let x = assignment[i];
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.cons {
            let lhs = c.expr.eval(assignment);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
                Cmp::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Objective value of an assignment, in the model's own sense.
    pub fn objective_value(&self, assignment: &[f64]) -> f64 {
        self.objective.eval(assignment)
    }

    /// True when `a` is a better objective value than `b` for this sense.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self.sense {
            Sense::Maximize => a > b,
            Sense::Minimize => a < b,
        }
    }

    /// Worst possible objective value for this sense (used to seed
    /// incumbents).
    pub fn worst(&self) -> f64 {
        match self.sense {
            Sense::Maximize => f64::NEG_INFINITY,
            Sense::Minimize => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let idx = m.add_con(LinExpr::var(x).plus(3.0), Cmp::Le, 5.0);
        assert_eq!(m.cons[idx].rhs, 2.0);
        assert_eq!(m.cons[idx].expr.constant, 0.0);
    }

    #[test]
    fn feasibility_checks_bounds_integrality_and_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 5.0);
        let y = m.num_var("y", 0.0, 5.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 6.0);
        assert!(m.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[2.5, 3.0], 1e-9)); // fractional integer
        assert!(!m.is_feasible(&[2.0, 5.0], 1e-9)); // row violated
        assert!(!m.is_feasible(&[-1.0, 0.0], 1e-9)); // bound violated
    }

    #[test]
    fn validation_rejects_bad_bounds_and_refs() {
        let mut m = Model::new(Sense::Minimize);
        m.num_var("x", 3.0, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::BadModel(_))));

        let mut m = Model::new(Sense::Minimize);
        m.num_var("x", 0.0, 1.0);
        m.set_objective(LinExpr::var(Var(7)));
        assert!(m.validate().is_err());
    }

    #[test]
    fn sense_helpers() {
        let m = Model::new(Sense::Maximize);
        assert!(m.better(2.0, 1.0));
        assert_eq!(m.worst(), f64::NEG_INFINITY);
        let m = Model::new(Sense::Minimize);
        assert!(m.better(1.0, 2.0));
        assert_eq!(m.worst(), f64::INFINITY);
    }

    #[test]
    fn integer_vars_listed() {
        let mut m = Model::new(Sense::Maximize);
        m.num_var("a", 0.0, 1.0);
        m.binary("b");
        m.int_var("c", 0.0, 9.0);
        assert_eq!(m.integer_vars(), vec![1, 2]);
    }
}
