//! Solver configuration knobs.

/// Tunable limits and tolerances for [`crate::solve`].
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Feasibility / integrality tolerance.
    pub tol: f64,
    /// Maximum simplex iterations per LP solve.
    pub max_simplex_iters: usize,
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Stop as soon as the incumbent is within this absolute gap of the
    /// best bound (0 = prove optimality exactly).
    pub abs_gap: f64,
    /// Try rounding the LP relaxation to seed an incumbent.
    pub rounding_heuristic: bool,
    /// Dive from each popped node to an integral leaf (best-first with
    /// plunging). Disabling reverts to pure best-first — exposed for the
    /// ablation bench; leave on for real solves.
    pub plunge: bool,
    /// Run bound-propagation presolve on the root model.
    pub presolve: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-6,
            max_simplex_iters: 200_000,
            max_nodes: 200_000,
            abs_gap: 1e-9,
            rounding_heuristic: true,
            plunge: true,
            presolve: true,
        }
    }
}

impl SolveOptions {
    /// A cheaper preset for large time-indexed formulations: a small
    /// optimality gap is accepted to cut tail nodes.
    pub fn fast() -> Self {
        SolveOptions {
            abs_gap: 1e-6,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolveOptions::default();
        assert!(o.tol > 0.0 && o.tol < 1e-3);
        assert!(o.max_nodes > 1000);
        assert!(o.rounding_heuristic);
    }

    #[test]
    fn fast_preset_loosens_gap() {
        assert!(SolveOptions::fast().abs_gap > SolveOptions::default().abs_gap);
    }
}
