//! Solver configuration knobs.

/// Which LP engine solves each relaxation.
///
/// Both engines implement the same bounded-variable two-phase primal
/// simplex with identical tolerances and solve every LP to proven
/// optimality, so they return the same objectives — the choice is purely
/// about cost per iteration. The differential fuzz harness cross-checks
/// the two on every corpus instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplexEngine {
    /// Sparse revised simplex: LU-factorized basis with eta updates,
    /// BTRAN/FTRAN solves, partial pricing. Cost per iteration tracks the
    /// nonzero count. The default.
    #[default]
    Revised,
    /// Dense tableau (the original engine). Cost per iteration is
    /// O(rows · cols) regardless of sparsity; kept as the differential
    /// oracle and for tiny instances.
    DenseTableau,
}

/// Variable-selection rule used by branch & bound at every fractional
/// node.
///
/// Both rules explore a valid search tree and return the identical
/// lexicographic optimum — the choice only affects how many nodes the
/// search visits before closing the tree. See `docs/SOLVER.md` for the
/// branching contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// The historical rule: branch on the integer variable whose LP value
    /// is closest to 0.5 (ties to the lowest variable index). No extra
    /// LPs are solved to pick the variable. Kept for the ablation bench
    /// and as the conservative baseline.
    MostFractional,
    /// Reliability pseudocost branching with a strong-branching fallback
    /// (the default). Per-variable up/down degradation averages are
    /// learned from every child LP the search solves; candidates whose
    /// pseudocosts are not yet reliable — or every candidate at depths
    /// shallower than [`SolveOptions::strong_branch_depth`] — are *strong
    /// branched*: both child LPs are solved (concurrently, warm-started
    /// from the node basis) and scored by their actual bound degradation.
    /// The chosen candidate's probe LPs are reused as the real children,
    /// so strong branching never solves the same LP twice.
    #[default]
    Pseudocost,
}

/// Where cutting planes are separated during branch & cut.
///
/// Cuts tighten the LP relaxation without excluding any integer point,
/// so — like the branching knobs — the policy changes the search tree
/// shape (node counts, separation work) but never the returned
/// proven-optimal objective. Every emitted cut carries an exact-rational
/// validity proof in the certificate (`insitu_types::cert::CutProof`);
/// see `docs/SOLVER.md` and `docs/CERTIFY.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutPolicy {
    /// No cuts: every node solves the raw relaxation (the pre-branch-and-
    /// cut behaviour, kept for the ablation bench and as the baseline).
    Off,
    /// Separate at the root only (the default): up to
    /// [`SolveOptions::cut_rounds`] rounds of Gomory + cover separation
    /// before the tree search starts. The surviving pool is frozen into
    /// the model every node solves, so the root pool — and hence the
    /// node-zero bound — is identical at any thread count.
    #[default]
    Root,
    /// Root separation plus bounded cover-cut re-separation at shallow
    /// tree nodes (locally appended, globally valid). Gomory cuts stay
    /// root-only: a tableau row read under branching bounds is not valid
    /// for the whole tree.
    Full,
}

/// Tunable limits and tolerances for [`crate::solve`].
///
/// Construct with struct-update syntax so future knobs don't break callers:
///
/// ```
/// use milp::SolveOptions;
/// let opts = SolveOptions { threads: 4, ..SolveOptions::default() };
/// assert_eq!(opts.effective_threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Feasibility / integrality tolerance.
    pub tol: f64,
    /// Maximum simplex iterations per LP solve.
    pub max_simplex_iters: usize,
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Stop as soon as the incumbent is within this absolute gap of the
    /// best bound (0 = prove optimality exactly).
    pub abs_gap: f64,
    /// Try rounding the LP relaxation to seed an incumbent.
    pub rounding_heuristic: bool,
    /// Dive from each popped node to an integral leaf (best-first with
    /// plunging). Disabling reverts to pure best-first — exposed for the
    /// ablation bench; leave on for real solves.
    pub plunge: bool,
    /// Run bound-propagation presolve on the root model.
    pub presolve: bool,
    /// Worker threads for the branch-and-bound search. `1` (the default)
    /// runs fully serial on the calling thread; `0` means one worker per
    /// available CPU. The parallel search returns the same objective as
    /// the serial one — see `docs/SOLVER.md` for the exact guarantee.
    pub threads: usize,
    /// Warm-start child LPs from the parent's simplex basis (dual-simplex
    /// repair after the branching bound change). Falls back to a cold
    /// two-phase solve whenever the repair fails, so this is purely a
    /// performance knob; results are identical either way because every
    /// LP is solved to optimality.
    pub warm_start: bool,
    /// Record a machine-checkable pruning certificate
    /// ([`insitu_types::SearchCertificate`]) in
    /// [`crate::SolveStats::certificate`]: one record per search node with
    /// its LP bound and fathoming reason, so an independent checker (the
    /// `certify` crate) can re-derive that the tree was closed. Off by
    /// default — the log costs one small allocation per node.
    pub certificate: bool,
    /// LP engine used for every relaxation (root, children, pure LP
    /// solves). See [`SimplexEngine`]; results are engine-independent.
    pub engine: SimplexEngine,
    /// Revised simplex only: refactorize the basis after this many eta
    /// updates. Smaller = more numerically conservative, larger = fewer
    /// (expensive) factorizations. Clamped to at least 1.
    pub refactor_interval: usize,
    /// Variable-selection rule at fractional nodes. See [`BranchRule`].
    pub branch_rule: BranchRule,
    /// [`BranchRule::Pseudocost`] only: a variable's pseudocost is
    /// *reliable* once both its down- and up-branch have been observed at
    /// least this many times; unreliable candidates are strong-branched.
    /// `0` trusts pseudocost estimates immediately (pure pseudocost
    /// branching — combined with `strong_branch_depth: 0` no strong
    /// branching ever runs).
    pub pseudocost_reliability: usize,
    /// [`BranchRule::Pseudocost`] only: at node depths shallower than
    /// this, *every* candidate is strong-branched regardless of
    /// reliability — the top of the tree is where a bad branching
    /// variable costs the most nodes.
    pub strong_branch_depth: usize,
    /// [`BranchRule::Pseudocost`] only: at most this many candidates are
    /// strong-branched per node (the most fractional ones win the slots).
    /// Clamped to at least 1 whenever the strong set is non-empty.
    pub strong_branch_limit: usize,
    /// Where cutting planes are separated. See [`CutPolicy`]; results are
    /// policy-independent (cuts never exclude an integer point).
    pub cut_policy: CutPolicy,
    /// Maximum root separation rounds: each round reads Gomory rows from
    /// the current basis, separates covers from the current fractional
    /// point, and re-solves the enlarged LP dual-simplex-warm. Separation
    /// stops early when a round adds no cut or the bound stalls.
    pub cut_rounds: usize,
    /// Hard cap on cuts applied across the whole solve (root pool plus
    /// node-local cover cuts). The pool evicts the least-violated cuts
    /// first when a round over-generates.
    pub max_cuts: usize,
    /// Span sink for solver tracing: [`crate::solve`] opens a
    /// `milp.solve` span (tagged with node/cut counts and the objective)
    /// on this handle, nested under whatever span — and request
    /// [`obs::TraceContext`] — the caller currently has open. The
    /// default handle is disabled and costs nothing.
    pub trace: obs::TraceHandle,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-6,
            max_simplex_iters: 200_000,
            max_nodes: 200_000,
            abs_gap: 1e-9,
            rounding_heuristic: true,
            plunge: true,
            presolve: true,
            threads: 1,
            warm_start: true,
            certificate: false,
            engine: SimplexEngine::default(),
            refactor_interval: 64,
            branch_rule: BranchRule::default(),
            pseudocost_reliability: 4,
            strong_branch_depth: 4,
            strong_branch_limit: 8,
            cut_policy: CutPolicy::default(),
            cut_rounds: 8,
            max_cuts: 64,
            trace: obs::TraceHandle::disabled(),
        }
    }
}

impl SolveOptions {
    /// A cheaper preset for large time-indexed formulations: a small
    /// optimality gap is accepted to cut tail nodes.
    pub fn fast() -> Self {
        SolveOptions {
            abs_gap: 1e-6,
            ..Self::default()
        }
    }

    /// Number of workers the search will actually spawn: `threads`, with
    /// `0` resolved to the available CPU count.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolveOptions::default();
        assert!(o.tol > 0.0 && o.tol < 1e-3);
        assert!(o.max_nodes > 1000);
        assert!(o.rounding_heuristic);
        assert_eq!(o.threads, 1);
        assert!(o.warm_start);
        assert_eq!(o.engine, SimplexEngine::Revised);
        assert!(o.refactor_interval >= 1);
        assert_eq!(o.branch_rule, BranchRule::Pseudocost);
        assert!(o.pseudocost_reliability >= 1);
        assert!(o.strong_branch_depth >= 1);
        assert!(o.strong_branch_limit >= 1);
        assert_eq!(o.cut_policy, CutPolicy::Root);
        assert!(o.cut_rounds >= 1);
        assert!(o.max_cuts >= 1);
    }

    #[test]
    fn cuts_off_is_expressible() {
        // the ablation baseline: branch & bound with no separation at all
        let o = SolveOptions {
            cut_policy: CutPolicy::Off,
            ..SolveOptions::default()
        };
        assert_eq!(o.cut_policy, CutPolicy::Off);
        assert_ne!(o.cut_policy, SolveOptions::default().cut_policy);
    }

    #[test]
    fn pure_pseudocost_config_disables_strong_branching() {
        // The knob combination the ablation bench and the knob-matrix test
        // rely on: reliability 0 + depth 0 means no strong-branch LPs.
        let o = SolveOptions {
            pseudocost_reliability: 0,
            strong_branch_depth: 0,
            ..SolveOptions::default()
        };
        assert_eq!(o.branch_rule, BranchRule::Pseudocost);
        assert_eq!(o.pseudocost_reliability, 0);
        assert_eq!(o.strong_branch_depth, 0);
    }

    #[test]
    fn fast_preset_loosens_gap() {
        assert!(SolveOptions::fast().abs_gap > SolveOptions::default().abs_gap);
    }

    #[test]
    fn zero_threads_resolves_to_cpu_count() {
        let o = SolveOptions {
            threads: 0,
            ..SolveOptions::default()
        };
        assert!(o.effective_threads() >= 1);
        assert_eq!(SolveOptions::default().effective_threads(), 1);
    }
}
