//! Presolve: constraint propagation before the search starts.
//!
//! Three classic, always-safe reductions run to a fixed point:
//!
//! 1. **Activity-based infeasibility**: if a row's minimum possible
//!    activity already exceeds its rhs (`<=` rows) the model is infeasible.
//! 2. **Redundant-row elimination**: if a row's maximum possible activity
//!    cannot violate it, the row is dropped.
//! 3. **Bound tightening**: for each variable in a row, the residual
//!    activity of the other variables implies a bound; integer variables'
//!    bounds are rounded inward.
//!
//! Variables are never eliminated, so solutions map back one-to-one.

use crate::error::SolveError;
use crate::model::{Cmp, Model, VarKind};

/// What presolve did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Constraints removed as redundant.
    pub rows_dropped: usize,
    /// Individual bound tightenings applied.
    pub bounds_tightened: usize,
    /// Variables whose domain collapsed to a single value.
    pub vars_fixed: usize,
    /// Propagation sweeps executed.
    pub passes: usize,
}

/// Minimum/maximum possible activity of a row under current bounds.
fn activity_bounds(model: &Model, row: usize) -> (f64, f64) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &(v, c) in &model.cons[row].expr.terms {
        let (l, u) = (model.vars[v.index()].lower, model.vars[v.index()].upper);
        if c >= 0.0 {
            lo += c * l;
            hi += c * u;
        } else {
            lo += c * u;
            hi += c * l;
        }
    }
    (lo, hi)
}

/// Runs presolve in place. Returns statistics, or an infeasibility proof.
pub fn presolve(model: &mut Model, tol: f64) -> Result<PresolveStats, SolveError> {
    let mut stats = PresolveStats::default();
    let max_passes = 20;
    loop {
        stats.passes += 1;
        let mut changed = false;
        let mut keep = vec![true; model.cons.len()];
        for (r, keep_row) in keep.iter_mut().enumerate() {
            let cmp = model.cons[r].cmp;
            let rhs = model.cons[r].rhs;
            let (lo, hi) = activity_bounds(model, r);
            if !lo.is_finite() && !hi.is_finite() {
                continue; // unbounded both ways: nothing provable
            }
            // infeasibility / redundancy
            match cmp {
                Cmp::Le => {
                    if lo > rhs + tol {
                        return Err(SolveError::Infeasible);
                    }
                    if hi <= rhs + tol {
                        *keep_row = false;
                        continue;
                    }
                }
                Cmp::Ge => {
                    if hi < rhs - tol {
                        return Err(SolveError::Infeasible);
                    }
                    if lo >= rhs - tol {
                        *keep_row = false;
                        continue;
                    }
                }
                Cmp::Eq => {
                    if lo > rhs + tol || hi < rhs - tol {
                        return Err(SolveError::Infeasible);
                    }
                }
            }
            // bound tightening per variable
            let terms = model.cons[r].expr.terms.clone();
            for &(v, c) in &terms {
                if c.abs() < 1e-12 {
                    continue;
                }
                let i = v.index();
                let (vl, vu) = (model.vars[i].lower, model.vars[i].upper);
                // residual activity of the other variables
                let (res_lo, res_hi) = {
                    let mut lo2 = 0.0;
                    let mut hi2 = 0.0;
                    for &(w, d) in &terms {
                        if w == v {
                            continue;
                        }
                        let (l, u) =
                            (model.vars[w.index()].lower, model.vars[w.index()].upper);
                        if d >= 0.0 {
                            lo2 += d * l;
                            hi2 += d * u;
                        } else {
                            lo2 += d * u;
                            hi2 += d * l;
                        }
                    }
                    (lo2, hi2)
                };
                // derive implied bounds per constraint sense
                let mut new_upper = vu;
                let mut new_lower = vl;
                let imply_le = |limit: f64| limit; // c*v <= limit
                match cmp {
                    Cmp::Le => {
                        if res_lo.is_finite() {
                            let limit = imply_le(rhs - res_lo);
                            if c > 0.0 {
                                new_upper = new_upper.min(limit / c);
                            } else {
                                new_lower = new_lower.max(limit / c);
                            }
                        }
                    }
                    Cmp::Ge => {
                        if res_hi.is_finite() {
                            let limit = rhs - res_hi; // c*v >= limit
                            if c > 0.0 {
                                new_lower = new_lower.max(limit / c);
                            } else {
                                new_upper = new_upper.min(limit / c);
                            }
                        }
                    }
                    Cmp::Eq => {
                        if res_lo.is_finite() {
                            let limit = rhs - res_lo;
                            if c > 0.0 {
                                new_upper = new_upper.min(limit / c);
                            } else {
                                new_lower = new_lower.max(limit / c);
                            }
                        }
                        if res_hi.is_finite() {
                            let limit = rhs - res_hi;
                            if c > 0.0 {
                                new_lower = new_lower.max(limit / c);
                            } else {
                                new_upper = new_upper.min(limit / c);
                            }
                        }
                    }
                }
                // integer rounding
                if model.vars[i].kind == VarKind::Integer {
                    if new_upper.is_finite() {
                        new_upper = (new_upper + tol).floor();
                    }
                    if new_lower.is_finite() {
                        new_lower = (new_lower - tol).ceil();
                    }
                }
                if new_upper < vu - tol {
                    model.vars[i].upper = new_upper;
                    stats.bounds_tightened += 1;
                    changed = true;
                }
                if new_lower > vl + tol {
                    model.vars[i].lower = new_lower;
                    stats.bounds_tightened += 1;
                    changed = true;
                }
                if model.vars[i].lower > model.vars[i].upper + tol {
                    return Err(SolveError::Infeasible);
                }
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut idx = 0;
            model.cons.retain(|_| {
                let k = keep[idx];
                idx += 1;
                if !k {
                    stats.rows_dropped += 1;
                }
                k
            });
            changed = true;
        }
        if !changed || stats.passes >= max_passes {
            break;
        }
    }
    stats.vars_fixed = model
        .vars
        .iter()
        .filter(|v| (v.upper - v.lower).abs() <= tol)
        .count();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Sense;

    #[test]
    fn tightens_knapsack_bounds() {
        // 5x + 2y <= 8, x,y integer in [0, 10] => x <= 1, y <= 4
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 5.0).term(y, 2.0), Cmp::Le, 8.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].upper, 1.0);
        assert_eq!(m.vars[y.index()].upper, 4.0);
        assert!(stats.bounds_tightened >= 2);
    }

    #[test]
    fn detects_infeasible_row() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        assert_eq!(presolve(&mut m, 1e-9).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn drops_redundant_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 5.0); // can never bind
        m.add_con(LinExpr::var(x), Cmp::Ge, -1.0); // can never bind
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.cons.len(), 0);
        assert_eq!(stats.rows_dropped, 2);
    }

    #[test]
    fn equality_fixes_variables() {
        // x + y = 2 with x,y in [0,1] => both forced to 1
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].lower, 1.0);
        assert_eq!(m.vars[y.index()].lower, 1.0);
        assert_eq!(stats.vars_fixed, 2);
    }

    #[test]
    fn integer_rounding_cuts_fractional_bounds() {
        // 2x <= 7, x integer => x <= 3 (not 3.5)
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0);
        m.add_con(LinExpr::new().term(x, 2.0), Cmp::Le, 7.0);
        presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].upper, 3.0);
    }

    #[test]
    fn propagation_chains_through_rows() {
        // x <= 2 (row), y <= x - 1 => y <= 1, then z <= y => z <= 1
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        let z = m.int_var("z", 0.0, 10.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 2.0);
        m.add_con(LinExpr::new().term(y, 1.0).term(x, -1.0), Cmp::Le, -1.0);
        m.add_con(LinExpr::new().term(z, 1.0).term(y, -1.0), Cmp::Le, 0.0);
        presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[y.index()].upper, 1.0);
        assert_eq!(m.vars[z.index()].upper, 1.0);
    }

    #[test]
    fn preserves_optimal_solutions() {
        // presolve then solve == solve directly
        let build = || {
            let mut m = Model::new(Sense::Maximize);
            let a = m.binary("a");
            let b = m.binary("b");
            let c = m.int_var("c", 0.0, 9.0);
            m.add_con(
                LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 1.0),
                Cmp::Le,
                9.0,
            );
            m.add_con(LinExpr::new().term(c, 2.0).term(b, 1.0), Cmp::Ge, 3.0);
            m.set_objective(LinExpr::new().term(a, 5.0).term(b, 4.0).term(c, 1.0));
            m
        };
        let direct = crate::solve(&build(), &crate::SolveOptions::default()).unwrap();
        let mut pre = build();
        presolve(&mut pre, 1e-9).unwrap();
        let solved = crate::solve(&pre, &crate::SolveOptions::default()).unwrap();
        assert!((direct.objective - solved.objective).abs() < 1e-9);
    }
}
