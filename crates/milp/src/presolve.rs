//! Presolve: constraint propagation before the search starts.
//!
//! Four classic, always-safe reductions run to a fixed point:
//!
//! 1. **Activity-based infeasibility**: if a row's minimum possible
//!    activity already exceeds its rhs (`<=` rows) the model is infeasible.
//! 2. **Redundant-row elimination**: if a row's maximum possible activity
//!    cannot violate it, the row is dropped.
//! 3. **Bound tightening**: for each variable in a row, the residual
//!    activity of the other variables implies a bound; integer variables'
//!    bounds are rounded inward.
//! 4. **Dominated-row elimination**: among inequality rows over the *same*
//!    variable support, a row implied by another under the current bounds
//!    is dropped. The scheduling formulation produces these in bulk: the
//!    telescoped per-step time/memory threshold rows (paper Eqs. 2–8)
//!    share one `o_{i,j}` support, and a step whose cumulative budget is
//!    uniformly looser than a later step's can never bind.
//!
//! Variables are never eliminated, so solutions map back one-to-one.

use crate::error::SolveError;
use crate::model::{Cmp, Model, VarKind};
use std::collections::{BTreeMap, HashMap};

/// What presolve did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Constraints removed as redundant.
    pub rows_dropped: usize,
    /// Constraints removed because a same-support row implies them.
    pub rows_dominated: usize,
    /// Individual bound tightenings applied.
    pub bounds_tightened: usize,
    /// Variables whose domain collapsed to a single value.
    pub vars_fixed: usize,
    /// Propagation sweeps executed.
    pub passes: usize,
}

/// Minimum/maximum possible activity of a row under current bounds.
fn activity_bounds(model: &Model, row: usize) -> (f64, f64) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &(v, c) in &model.cons[row].expr.terms {
        let (l, u) = (model.vars[v.index()].lower, model.vars[v.index()].upper);
        if c >= 0.0 {
            lo += c * l;
            hi += c * u;
        } else {
            lo += c * u;
            hi += c * l;
        }
    }
    (lo, hi)
}

/// Aggregated coefficients of a row, keyed by variable index.
fn row_coeffs(model: &Model, row: usize) -> BTreeMap<usize, f64> {
    let mut coeffs = BTreeMap::new();
    for &(v, c) in &model.cons[row].expr.terms {
        *coeffs.entry(v.index()).or_insert(0.0) += c;
    }
    coeffs
}

/// True when `cand` is implied by `keeper` (same sense, same support)
/// under the current variable bounds: for `<=` rows, the maximum possible
/// activity of `A_cand − A_keeper` stays within the rhs slack; for `>=`
/// rows, the minimum does.
fn row_dominates(model: &Model, keeper: usize, cand: usize, tol: f64) -> bool {
    let mut diff = row_coeffs(model, cand);
    for (i, c) in row_coeffs(model, keeper) {
        *diff.entry(i).or_insert(0.0) -= c;
    }
    let slack = model.cons[cand].rhs - model.cons[keeper].rhs;
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for (&i, &d) in &diff {
        let (l, u) = (model.vars[i].lower, model.vars[i].upper);
        if d >= 0.0 {
            lo += d * l;
            hi += d * u;
        } else {
            lo += d * u;
            hi += d * l;
        }
    }
    match model.cons[cand].cmp {
        Cmp::Le => hi <= slack + tol,
        Cmp::Ge => lo >= slack - tol,
        Cmp::Eq => false,
    }
}

/// Runs presolve in place. Returns statistics, or an infeasibility proof.
pub fn presolve(model: &mut Model, tol: f64) -> Result<PresolveStats, SolveError> {
    let mut stats = PresolveStats::default();
    let max_passes = 20;
    loop {
        stats.passes += 1;
        let mut changed = false;
        let mut keep = vec![true; model.cons.len()];
        for (r, keep_row) in keep.iter_mut().enumerate() {
            let cmp = model.cons[r].cmp;
            let rhs = model.cons[r].rhs;
            let (lo, hi) = activity_bounds(model, r);
            if !lo.is_finite() && !hi.is_finite() {
                continue; // unbounded both ways: nothing provable
            }
            // infeasibility / redundancy
            match cmp {
                Cmp::Le => {
                    if lo > rhs + tol {
                        return Err(SolveError::Infeasible);
                    }
                    if hi <= rhs + tol {
                        *keep_row = false;
                        continue;
                    }
                }
                Cmp::Ge => {
                    if hi < rhs - tol {
                        return Err(SolveError::Infeasible);
                    }
                    if lo >= rhs - tol {
                        *keep_row = false;
                        continue;
                    }
                }
                Cmp::Eq => {
                    if lo > rhs + tol || hi < rhs - tol {
                        return Err(SolveError::Infeasible);
                    }
                }
            }
            // bound tightening per variable
            let terms = model.cons[r].expr.terms.clone();
            for &(v, c) in &terms {
                if c.abs() < 1e-12 {
                    continue;
                }
                let i = v.index();
                let (vl, vu) = (model.vars[i].lower, model.vars[i].upper);
                // residual activity of the other variables
                let (res_lo, res_hi) = {
                    let mut lo2 = 0.0;
                    let mut hi2 = 0.0;
                    for &(w, d) in &terms {
                        if w == v {
                            continue;
                        }
                        let (l, u) =
                            (model.vars[w.index()].lower, model.vars[w.index()].upper);
                        if d >= 0.0 {
                            lo2 += d * l;
                            hi2 += d * u;
                        } else {
                            lo2 += d * u;
                            hi2 += d * l;
                        }
                    }
                    (lo2, hi2)
                };
                // derive implied bounds per constraint sense
                let mut new_upper = vu;
                let mut new_lower = vl;
                let imply_le = |limit: f64| limit; // c*v <= limit
                match cmp {
                    Cmp::Le => {
                        if res_lo.is_finite() {
                            let limit = imply_le(rhs - res_lo);
                            if c > 0.0 {
                                new_upper = new_upper.min(limit / c);
                            } else {
                                new_lower = new_lower.max(limit / c);
                            }
                        }
                    }
                    Cmp::Ge => {
                        if res_hi.is_finite() {
                            let limit = rhs - res_hi; // c*v >= limit
                            if c > 0.0 {
                                new_lower = new_lower.max(limit / c);
                            } else {
                                new_upper = new_upper.min(limit / c);
                            }
                        }
                    }
                    Cmp::Eq => {
                        if res_lo.is_finite() {
                            let limit = rhs - res_lo;
                            if c > 0.0 {
                                new_upper = new_upper.min(limit / c);
                            } else {
                                new_lower = new_lower.max(limit / c);
                            }
                        }
                        if res_hi.is_finite() {
                            let limit = rhs - res_hi;
                            if c > 0.0 {
                                new_lower = new_lower.max(limit / c);
                            } else {
                                new_upper = new_upper.min(limit / c);
                            }
                        }
                    }
                }
                // integer rounding
                if model.vars[i].kind == VarKind::Integer {
                    if new_upper.is_finite() {
                        new_upper = (new_upper + tol).floor();
                    }
                    if new_lower.is_finite() {
                        new_lower = (new_lower - tol).ceil();
                    }
                }
                if new_upper < vu - tol {
                    model.vars[i].upper = new_upper;
                    stats.bounds_tightened += 1;
                    changed = true;
                }
                if new_lower > vl + tol {
                    model.vars[i].lower = new_lower;
                    stats.bounds_tightened += 1;
                    changed = true;
                }
                if model.vars[i].lower > model.vars[i].upper + tol {
                    return Err(SolveError::Infeasible);
                }
            }
        }
        // dominated-row elimination: bucket surviving inequality rows by
        // variable support, then compare pairs within each bucket. Bucket
        // contents are in ascending row order and buckets never interact,
        // so the outcome is deterministic despite the hash map.
        let mut dominated = vec![false; model.cons.len()];
        let mut buckets: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
        for (r, con) in model.cons.iter().enumerate() {
            if !keep[r] || con.cmp == Cmp::Eq {
                continue;
            }
            let mut support: Vec<usize> =
                con.expr.terms.iter().map(|&(v, _)| v.index()).collect();
            support.sort_unstable();
            support.dedup();
            buckets.entry(support).or_default().push(r);
        }
        for rows in buckets.values() {
            for a in 0..rows.len() {
                for b in (a + 1)..rows.len() {
                    let (r1, r2) = (rows[a], rows[b]);
                    if dominated[r1]
                        || dominated[r2]
                        || model.cons[r1].cmp != model.cons[r2].cmp
                    {
                        continue;
                    }
                    // prefer keeping the earlier row so mutually-dominating
                    // (identical) pairs resolve deterministically
                    if row_dominates(model, r1, r2, tol) {
                        dominated[r2] = true;
                    } else if row_dominates(model, r2, r1, tol) {
                        dominated[r1] = true;
                    }
                }
            }
        }
        if keep.iter().any(|&k| !k) || dominated.iter().any(|&d| d) {
            let mut idx = 0;
            model.cons.retain(|_| {
                let (k, dom) = (keep[idx], dominated[idx]);
                idx += 1;
                if !k {
                    stats.rows_dropped += 1;
                } else if dom {
                    stats.rows_dominated += 1;
                }
                k && !dom
            });
            changed = true;
        }
        if !changed || stats.passes >= max_passes {
            break;
        }
    }
    stats.vars_fixed = model
        .vars
        .iter()
        .filter(|v| (v.upper - v.lower).abs() <= tol)
        .count();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Sense;

    #[test]
    fn tightens_knapsack_bounds() {
        // 5x + 2y <= 8, x,y integer in [0, 10] => x <= 1, y <= 4
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 5.0).term(y, 2.0), Cmp::Le, 8.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].upper, 1.0);
        assert_eq!(m.vars[y.index()].upper, 4.0);
        assert!(stats.bounds_tightened >= 2);
    }

    #[test]
    fn detects_infeasible_row() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        assert_eq!(presolve(&mut m, 1e-9).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn drops_redundant_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 5.0); // can never bind
        m.add_con(LinExpr::var(x), Cmp::Ge, -1.0); // can never bind
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.cons.len(), 0);
        assert_eq!(stats.rows_dropped, 2);
    }

    #[test]
    fn drops_dominated_le_row() {
        // x + y <= 5 dominates x + 2y <= 8 when y <= 3: the extra y of
        // slack can never exceed the extra 3 of rhs. Neither row is
        // redundant on its own (max activities 6 and 9).
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 3.0);
        let y = m.int_var("y", 0.0, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 5.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Le, 8.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(stats.rows_dominated, 1);
        assert_eq!(m.cons.len(), 1);
        assert_eq!(m.cons[0].rhs, 5.0);
    }

    #[test]
    fn drops_dominated_ge_row() {
        // x + y >= 1 dominates x + 2y >= 0.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 3.0);
        let y = m.num_var("y", 0.0, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 2.0), Cmp::Ge, 0.5);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(stats.rows_dominated, 1);
        assert_eq!(m.cons.len(), 1);
        assert_eq!(m.cons[0].rhs, 1.0);
    }

    #[test]
    fn identical_rows_keep_exactly_one() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 3.0);
        let y = m.int_var("y", 0.0, 3.0);
        for _ in 0..3 {
            m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 5.0);
        }
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.cons.len(), 1);
        assert_eq!(stats.rows_dominated, 2);
    }

    #[test]
    fn different_support_rows_are_not_compared() {
        // same-looking slack but different supports: both must survive
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 3.0);
        let y = m.int_var("y", 0.0, 3.0);
        let z = m.int_var("z", 0.0, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 5.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(z, 1.0), Cmp::Le, 5.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(stats.rows_dominated, 0);
        assert_eq!(m.cons.len(), 2);
    }

    #[test]
    fn equality_rows_are_never_dominated() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 3.0);
        let y = m.num_var("y", 0.0, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 2.5);
        let stats = presolve(&mut m, 1e-9).unwrap();
        // the Le row may tighten/survive, but the Eq row must remain
        assert!(m.cons.iter().any(|c| c.cmp == Cmp::Eq));
        assert_eq!(stats.rows_dominated, 0);
    }

    #[test]
    fn dominated_elimination_preserves_optimum() {
        // a scheduling-shaped model: telescoped cumulative-budget rows
        // over the same support where the earlier step is uniformly looser
        let build = |with_dominated: bool| {
            let mut m = Model::new(Sense::Maximize);
            let o: Vec<_> = (0..4).map(|i| m.binary(&format!("o{i}"))).collect();
            let costs = [3.0, 5.0, 2.0, 4.0];
            m.add_con(
                LinExpr::sum(o.iter().zip(costs).map(|(&v, c)| (v, c))),
                Cmp::Le,
                8.0,
            );
            if with_dominated {
                // same support, looser rhs: can never bind
                m.add_con(
                    LinExpr::sum(o.iter().zip(costs).map(|(&v, c)| (v, c))),
                    Cmp::Le,
                    11.0,
                );
            }
            m.set_objective(LinExpr::sum(o.iter().map(|&v| (v, 1.0))));
            m
        };
        let mut with = build(true);
        let stats = presolve(&mut with, 1e-9).unwrap();
        assert_eq!(stats.rows_dominated, 1);
        let a = crate::solve(&with, &crate::SolveOptions::default()).unwrap();
        let b = crate::solve(&build(false), &crate::SolveOptions::default()).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn equality_fixes_variables() {
        // x + y = 2 with x,y in [0,1] => both forced to 1
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        let stats = presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].lower, 1.0);
        assert_eq!(m.vars[y.index()].lower, 1.0);
        assert_eq!(stats.vars_fixed, 2);
    }

    #[test]
    fn integer_rounding_cuts_fractional_bounds() {
        // 2x <= 7, x integer => x <= 3 (not 3.5)
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 100.0);
        m.add_con(LinExpr::new().term(x, 2.0), Cmp::Le, 7.0);
        presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[x.index()].upper, 3.0);
    }

    #[test]
    fn propagation_chains_through_rows() {
        // x <= 2 (row), y <= x - 1 => y <= 1, then z <= y => z <= 1
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        let z = m.int_var("z", 0.0, 10.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 2.0);
        m.add_con(LinExpr::new().term(y, 1.0).term(x, -1.0), Cmp::Le, -1.0);
        m.add_con(LinExpr::new().term(z, 1.0).term(y, -1.0), Cmp::Le, 0.0);
        presolve(&mut m, 1e-9).unwrap();
        assert_eq!(m.vars[y.index()].upper, 1.0);
        assert_eq!(m.vars[z.index()].upper, 1.0);
    }

    #[test]
    fn preserves_optimal_solutions() {
        // presolve then solve == solve directly
        let build = || {
            let mut m = Model::new(Sense::Maximize);
            let a = m.binary("a");
            let b = m.binary("b");
            let c = m.int_var("c", 0.0, 9.0);
            m.add_con(
                LinExpr::new().term(a, 3.0).term(b, 4.0).term(c, 1.0),
                Cmp::Le,
                9.0,
            );
            m.add_con(LinExpr::new().term(c, 2.0).term(b, 1.0), Cmp::Ge, 3.0);
            m.set_objective(LinExpr::new().term(a, 5.0).term(b, 4.0).term(c, 1.0));
            m
        };
        let direct = crate::solve(&build(), &crate::SolveOptions::default()).unwrap();
        let mut pre = build();
        presolve(&mut pre, 1e-9).unwrap();
        let solved = crate::solve(&pre, &crate::SolveOptions::default()).unwrap();
        assert!((direct.objective - solved.objective).abs() < 1e-9);
    }
}
