//! Sparse revised simplex — the default LP engine.
//!
//! Where the dense tableau engine ([`crate::simplex`]) keeps the full
//! `B⁻¹A` matrix and pays `O(rows · cols)` per pivot, this engine keeps
//! only
//!
//! * the constraint matrix in CSC form ([`crate::standard::Csc`], shared,
//!   read-only),
//! * an LU factorization of the current basis with an eta file of
//!   product-form updates ([`crate::lu`]), refactorized every
//!   [`SolveOptions::refactor_interval`] pivots,
//! * the basic-variable values `x_B`, updated incrementally and
//!   recomputed exactly at every refactorization.
//!
//! Per iteration it solves `Bᵀy = c_B` (**BTRAN**) for the pricing duals,
//! prices nonbasic columns with **partial (candidate-block) pricing**
//! (Dantzig within the block, with the same automatic switch to Bland's
//! rule as the dense engine), and solves `Bw = a_j` (**FTRAN**) for the
//! bounded-variable ratio test. Per-pivot cost therefore tracks the
//! nonzero count, not the matrix area.
//!
//! The two engines implement the same method (bounded-variable two-phase
//! primal simplex with dual-simplex warm-start repair) with the same
//! tolerances, so they terminate on the same optima; every solve is an
//! independently proven optimum either way, which the differential fuzz
//! harness (`tests/tests/certify_differential.rs`) cross-checks on the
//! full seeded corpus.

use std::time::Instant;

use crate::error::SolveError;
use crate::lu::{Factorization, LuFactors};
use crate::options::SolveOptions;
use crate::simplex::{Basis, LpPoint};
use crate::standard::StandardForm;
use crate::stats::LpTelemetry;

/// Minimum absolute pivot element accepted (same as the dense engine).
const PIVOT_TOL: f64 = 1e-9;
/// Reduced-cost threshold for entering eligibility.
const COST_TOL: f64 = 1e-7;
/// Residual threshold for phase-1 feasibility.
const FEAS_TOL: f64 = 1e-6;
/// Smallest partial-pricing candidate block.
const PRICE_BLOCK_MIN: usize = 64;

/// Working state of one revised-simplex solve.
struct Engine<'a> {
    sf: &'a StandardForm,
    m: usize,
    /// Structural + slack columns.
    n: usize,
    /// `n` + one artificial per row.
    n_total: usize,
    /// Sign of each artificial column (`±e_r`), chosen so the initial
    /// artificial value is `|residual|`.
    art_sign: Vec<f64>,
    /// Column basic in each position.
    basis: Vec<usize>,
    /// Per-column basic flag (maintained incrementally).
    in_basis: Vec<bool>,
    /// Nonbasic-at-upper flags.
    at_upper: Vec<bool>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Columns banned from entering (artificials that left the basis).
    banned: Vec<bool>,
    /// Values of the basic variables, by basis position.
    x_basic: Vec<f64>,
    fac: Factorization,
    iterations: usize,
    refactor_interval: usize,
    tele: LpTelemetry,
    /// Rotating start column of the partial-pricing scan.
    price_start: usize,
    // --- scratch buffers (allocation-free iterations) ---
    /// FTRAN right-hand side (orig-row space).
    sv: Vec<f64>,
    /// FTRAN result (basis-position space) — the entering column image.
    sw: Vec<f64>,
    /// BTRAN right-hand side (basis-position space).
    sc: Vec<f64>,
    /// BTRAN result: pricing duals `y` (orig-row space).
    sy: Vec<f64>,
    /// BTRAN result: dual-simplex row `ρ = B⁻ᵀ eᵣ` (orig-row space).
    sr: Vec<f64>,
    /// BTRAN internal scratch (pivot-sequence space).
    sg: Vec<f64>,
}

impl<'a> Engine<'a> {
    /// Engine with the all-artificial starting basis (phase-1 ready).
    fn cold(sf: &'a StandardForm, opts: &SolveOptions) -> Engine<'a> {
        let m = sf.nrows();
        let n = sf.ncols();
        let n_total = n + m;
        let mut lower = sf.lower.clone();
        let mut upper = sf.upper.clone();
        lower.extend(std::iter::repeat_n(0.0, m));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m));
        // residuals with every column at its (finite) lower bound
        let mut resid = sf.b.clone();
        for j in 0..n {
            let lj = sf.lower[j];
            if lj != 0.0 {
                for (r, v) in sf.a.col(j) {
                    resid[r] -= v * lj;
                }
            }
        }
        let art_sign: Vec<f64> = resid
            .iter()
            .map(|&r| if r < 0.0 { -1.0 } else { 1.0 })
            .collect();
        let x_basic: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
        let cols: Vec<Vec<(usize, f64)>> =
            (0..m).map(|r| vec![(r, art_sign[r])]).collect();
        let lu = LuFactors::factor(m, &cols).expect("±identity is nonsingular");
        let mut in_basis = vec![false; n_total];
        in_basis[n..n_total].fill(true);
        Engine {
            sf,
            m,
            n,
            n_total,
            art_sign,
            basis: (n..n_total).collect(),
            in_basis,
            at_upper: vec![false; n_total],
            lower,
            upper,
            banned: vec![false; n_total],
            x_basic,
            fac: Factorization::new(lu),
            iterations: 0,
            refactor_interval: opts.refactor_interval.max(1),
            tele: LpTelemetry::default(),
            price_start: 0,
            sv: vec![0.0; m],
            sw: vec![0.0; m],
            sc: vec![0.0; m],
            sy: vec![0.0; m],
            sr: vec![0.0; m],
            sg: vec![0.0; m],
        }
    }

    /// Dot product of column `j` (structural/slack from the CSC matrix,
    /// artificial as a signed unit vector) with a row-space vector.
    #[inline]
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.sf.a.col(j).map(|(r, v)| y[r] * v).sum()
        } else {
            self.art_sign[j - self.n] * y[j - self.n]
        }
    }

    /// `sw = B⁻¹ a_j` (timed FTRAN).
    fn ftran_col(&mut self, j: usize) {
        self.sv.fill(0.0);
        if j < self.n {
            for (r, v) in self.sf.a.col(j) {
                self.sv[r] = v;
            }
        } else {
            self.sv[j - self.n] = self.art_sign[j - self.n];
        }
        let t0 = Instant::now();
        self.fac.ftran(&mut self.sv, &mut self.sw);
        self.tele.ftran_ns += t0.elapsed().as_nanos() as u64;
    }

    /// `sy = B⁻ᵀ c_B` — the pricing duals (timed BTRAN).
    fn duals(&mut self, cost: &[f64]) {
        for k in 0..self.m {
            self.sc[k] = cost[self.basis[k]];
        }
        let t0 = Instant::now();
        self.fac.btran(&mut self.sc, &mut self.sy, &mut self.sg);
        self.tele.btran_ns += t0.elapsed().as_nanos() as u64;
    }

    /// `sr = B⁻ᵀ e_r` — row `r` of the basis inverse (timed BTRAN).
    fn inverse_row(&mut self, r: usize) {
        self.sc.fill(0.0);
        self.sc[r] = 1.0;
        let t0 = Instant::now();
        self.fac.btran(&mut self.sc, &mut self.sr, &mut self.sg);
        self.tele.btran_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Recomputes `x_B = B⁻¹ (b − A_N x_N)` exactly.
    fn recompute_x(&mut self) {
        self.sv.copy_from_slice(&self.sf.b);
        for j in 0..self.n_total {
            if self.in_basis[j] {
                continue;
            }
            let xj = if self.at_upper[j] {
                self.upper[j]
            } else {
                self.lower[j]
            };
            if xj != 0.0 {
                if j < self.n {
                    for (r, v) in self.sf.a.col(j) {
                        self.sv[r] -= v * xj;
                    }
                } else {
                    self.sv[j - self.n] -= self.art_sign[j - self.n] * xj;
                }
            }
        }
        let t0 = Instant::now();
        self.fac.ftran(&mut self.sv, &mut self.x_basic);
        self.tele.ftran_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Refactorizes the current basis from scratch and recomputes `x_B`.
    /// `false` means the basis is numerically singular.
    fn refactor(&mut self) -> bool {
        let cols: Vec<Vec<(usize, f64)>> = self
            .basis
            .iter()
            .map(|&j| {
                if j < self.n {
                    self.sf.a.col(j).collect()
                } else {
                    vec![(j - self.n, self.art_sign[j - self.n])]
                }
            })
            .collect();
        match LuFactors::factor(self.m, &cols) {
            Some(lu) => {
                self.fac = Factorization::new(lu);
                self.tele.refactorizations += 1;
                self.recompute_x();
                true
            }
            None => false,
        }
    }

    /// Executes the basis exchange "`basis[r] := j`, entering at value
    /// `enter_val` after moving `step` along `sw`", records the eta (or
    /// refactorizes when the eta file is full / the pivot too small).
    fn apply_pivot(
        &mut self,
        r: usize,
        j: usize,
        step: f64,
        enter_val: f64,
    ) -> Result<(), SolveError> {
        let leaving = self.basis[r];
        if step != 0.0 {
            for k in 0..self.m {
                let wk = self.sw[k];
                if wk != 0.0 {
                    self.x_basic[k] -= step * wk;
                }
            }
        }
        self.x_basic[r] = enter_val;
        self.in_basis[leaving] = false;
        self.in_basis[j] = true;
        self.basis[r] = j;
        if leaving >= self.n {
            self.banned[leaving] = true;
        }
        self.iterations += 1;
        let pushed = self.fac.push_eta(r, &self.sw);
        self.tele.max_eta_len = self.tele.max_eta_len.max(self.fac.eta_len());
        if (!pushed || self.fac.eta_len() >= self.refactor_interval) && !self.refactor() {
            // the basis went numerically singular: no stable way forward
            return Err(SolveError::IterationLimit {
                iterations: self.iterations,
            });
        }
        Ok(())
    }

    /// Bland pricing: first eligible column by index.
    fn price_bland(&self, cost: &[f64]) -> Option<(usize, bool)> {
        (0..self.n_total).find_map(|j| self.eligibility(j, cost).map(|f| (j, f)))
    }

    /// Eligibility of one column under the current duals `sy`; returns
    /// the `from_upper` flag when the column can improve the objective.
    #[inline]
    fn eligibility(&self, j: usize, cost: &[f64]) -> Option<bool> {
        if self.in_basis[j] || self.banned[j] || self.lower[j] == self.upper[j] {
            return None;
        }
        let d = cost[j] - self.col_dot(j, &self.sy);
        if self.at_upper[j] {
            (d > COST_TOL).then_some(true)
        } else {
            (d < -COST_TOL).then_some(false)
        }
    }

    /// Partial pricing: scan candidate blocks from a rotating start;
    /// within the first block containing an eligible column, pick the
    /// largest |reduced cost| (Dantzig). `None` after a full wrap means
    /// this phase is optimal.
    fn price_partial(&mut self, cost: &[f64]) -> Option<(usize, bool)> {
        let n = self.n_total;
        if n == 0 {
            return None;
        }
        let block = (n / 8).max(PRICE_BLOCK_MIN).min(n);
        let mut best: Option<(usize, f64, bool)> = None;
        let mut idx = self.price_start % n;
        let mut scanned = 0;
        while scanned < n {
            for _ in 0..block {
                if scanned >= n {
                    break;
                }
                let j = idx;
                idx = (idx + 1) % n;
                scanned += 1;
                if self.in_basis[j] || self.banned[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let d = cost[j] - self.col_dot(j, &self.sy);
                let eligible = if self.at_upper[j] {
                    d > COST_TOL
                } else {
                    d < -COST_TOL
                };
                if eligible {
                    match best {
                        Some((_, b, _)) if d.abs() <= b => {}
                        _ => best = Some((j, d.abs(), self.at_upper[j])),
                    }
                }
            }
            if best.is_some() {
                break;
            }
        }
        self.price_start = idx;
        best.map(|(j, _, f)| (j, f))
    }

    /// One simplex phase: minimize `cost · x` until optimal.
    fn run(&mut self, cost: &[f64], opts: &SolveOptions) -> Result<(), SolveError> {
        let bland_after = 20 * (self.m + self.n_total) + 200;
        let mut local = 0usize;
        loop {
            if self.iterations >= opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            local += 1;
            let bland = local > bland_after;
            self.duals(cost);
            let enter = if bland {
                self.price_bland(cost)
            } else {
                self.price_partial(cost)
            };
            let Some((j, from_upper)) = enter else {
                return Ok(()); // optimal for this phase
            };
            let dir = if from_upper { -1.0 } else { 1.0 };
            self.ftran_col(j);
            // --- bounded-variable ratio test (mirrors the dense engine) ---
            let span = self.upper[j] - self.lower[j]; // may be inf
            let mut delta = span;
            let mut leave: Option<(usize, bool)> = None;
            let mut best_piv = 0.0;
            for r in 0..self.m {
                let t = self.sw[r] * dir;
                let bj = self.basis[r];
                let xb = self.x_basic[r];
                if t > PIVOT_TOL {
                    let limit = ((xb - self.lower[bj]) / t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, false));
                        best_piv = t.abs();
                    }
                } else if t < -PIVOT_TOL {
                    if self.upper[bj].is_infinite() {
                        continue;
                    }
                    let limit = ((self.upper[bj] - xb) / -t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, true));
                        best_piv = t.abs();
                    }
                }
            }
            if delta.is_infinite() {
                return Err(SolveError::Unbounded);
            }
            match leave {
                None => {
                    // bound flip: entering runs across its whole span
                    if delta != 0.0 {
                        for k in 0..self.m {
                            let wk = self.sw[k];
                            if wk != 0.0 {
                                self.x_basic[k] -= dir * delta * wk;
                            }
                        }
                    }
                    self.at_upper[j] = !self.at_upper[j];
                    self.iterations += 1;
                }
                Some((r, leaves_at_upper)) => {
                    let leaving = self.basis[r];
                    self.at_upper[leaving] = leaves_at_upper;
                    let rest = if from_upper { self.upper[j] } else { self.lower[j] };
                    self.apply_pivot(r, j, dir * delta, rest + dir * delta)?;
                }
            }
        }
    }

    /// Pivots every basic artificial out (degenerate swaps) or pins it at
    /// zero when its row is redundant. Call between the phases.
    fn drive_out_artificials(&mut self) -> Result<(), SolveError> {
        for r in 0..self.m {
            if self.basis[r] < self.n {
                continue;
            }
            self.inverse_row(r); // sr = row r of B^-1
            let mut found = None;
            for j in 0..self.n {
                if self.in_basis[j] || self.banned[j] {
                    continue;
                }
                if self.col_dot(j, &self.sr).abs() > 1e-7 {
                    found = Some(j);
                    break;
                }
            }
            match found {
                Some(j) => {
                    self.ftran_col(j);
                    if self.sw[r].abs() <= PIVOT_TOL {
                        // numerically inconsistent with ρ·a_j: pin instead
                        let a = self.basis[r];
                        self.lower[a] = 0.0;
                        self.upper[a] = 0.0;
                        continue;
                    }
                    // degenerate swap: the point does not move
                    let rest = if self.at_upper[j] { self.upper[j] } else { self.lower[j] };
                    self.apply_pivot(r, j, 0.0, rest)?;
                }
                None => {
                    // redundant row: pin the artificial so it can never move
                    let a = self.basis[r];
                    self.lower[a] = 0.0;
                    self.upper[a] = 0.0;
                }
            }
        }
        Ok(())
    }

    /// Largest bound violation among the basic variables.
    fn primal_infeasibility(&self) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..self.m {
            let bj = self.basis[r];
            let xb = self.x_basic[r];
            worst = worst.max(self.lower[bj] - xb).max(xb - self.upper[bj]);
        }
        worst
    }

    /// Bounded-variable dual simplex: repairs primal infeasibility while
    /// keeping the reduced costs optimal-signed. Same contract as the
    /// dense engine's repair: `Ok(false)` means "fall back to a cold
    /// solve" and is never a feasibility verdict.
    fn dual_repair(&mut self, cost: &[f64], opts: &SolveOptions) -> Result<bool, SolveError> {
        let budget = 5 * (self.m + self.n_total) + 100;
        let mut local = 0usize;
        loop {
            if self.iterations >= opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            if local >= budget {
                return Ok(false);
            }
            local += 1;
            // --- most infeasible basic variable ---
            let mut worst: Option<(usize, f64, bool)> = None; // (row, violation, to_upper)
            for r in 0..self.m {
                let bj = self.basis[r];
                let xb = self.x_basic[r];
                let below = self.lower[bj] - xb;
                let above = xb - self.upper[bj];
                if below > FEAS_TOL && worst.is_none_or(|(_, v, _)| below > v) {
                    worst = Some((r, below, false));
                }
                if above > FEAS_TOL && worst.is_none_or(|(_, v, _)| above > v) {
                    worst = Some((r, above, true));
                }
            }
            let Some((r, _, to_upper)) = worst else {
                return Ok(true); // primal feasible
            };
            // --- dual ratio test over nonbasic columns ---
            self.duals(cost); // sy: duals for the reduced costs
            self.inverse_row(r); // sr: pivot row of B^-1
            let mut enter: Option<(usize, f64)> = None; // (col, ratio)
            for (j, &cj) in cost.iter().enumerate() {
                if self.in_basis[j] || self.banned[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let t = self.col_dot(j, &self.sr);
                if t.abs() <= PIVOT_TOL {
                    continue;
                }
                let increases = if self.at_upper[j] { t > 0.0 } else { t < 0.0 };
                // need xB[r] to increase when below lower, decrease when above
                if increases == to_upper {
                    continue;
                }
                let d = cj - self.col_dot(j, &self.sy);
                let ratio = (d / t).abs();
                match enter {
                    Some((_, best)) if best <= ratio => {}
                    _ => enter = Some((j, ratio)),
                }
            }
            let Some((j, _)) = enter else {
                return Ok(false); // let the cold path decide feasibility
            };
            self.ftran_col(j);
            if self.sw[r].abs() <= PIVOT_TOL {
                return Ok(false); // FTRAN disagrees with ρ·a_j: bail out
            }
            let leaving = self.basis[r];
            let target = if to_upper {
                self.upper[leaving]
            } else {
                self.lower[leaving]
            };
            let step = (self.x_basic[r] - target) / self.sw[r];
            let rest = if self.at_upper[j] { self.upper[j] } else { self.lower[j] };
            self.at_upper[leaving] = to_upper;
            self.apply_pivot(r, j, step, rest + step)?;
        }
    }

    /// Extracts the optimum: full column values, objective in the model
    /// sense, and the basis snapshot for warm-starting children.
    fn finish(mut self, warm: bool) -> LpPoint {
        let mut x = vec![0.0; self.n];
        for (j, xj) in x.iter_mut().enumerate() {
            if !self.in_basis[j] {
                *xj = if self.at_upper[j] { self.upper[j] } else { self.lower[j] };
            }
        }
        for k in 0..self.m {
            if self.basis[k] < self.n {
                x[self.basis[k]] = self.x_basic[k];
            }
        }
        let objective = self.sf.model_objective(&x);
        self.tele.max_eta_len = self.tele.max_eta_len.max(self.fac.eta_len());
        LpPoint {
            x,
            objective,
            iterations: self.iterations,
            basis: Basis {
                basic: self.basis.clone(),
                at_upper: self.at_upper[..self.n].to_vec(),
            },
            warm,
            telemetry: self.tele,
        }
    }
}

/// Read-only access to the simplex tableau of an optimal basis — the
/// Gomory separator's window into `B⁻¹A`.
///
/// Wraps an [`Engine`] refactorized at a caller-supplied basis (normally
/// the final basis of the LP just solved) without running any simplex
/// iterations, and exposes exactly what cut generation needs: which column
/// is basic in each row, the basic values, the resting bounds, and full
/// tableau rows computed on demand via BTRAN (`ρ = B⁻ᵀeᵣ`) plus one sparse
/// dot product per column — the same machinery the dual-simplex pricing
/// step uses, so reading a row costs one BTRAN, not a dense inversion.
pub(crate) struct TableauView<'a> {
    e: Engine<'a>,
}

impl<'a> TableauView<'a> {
    /// Refactorizes `basis` over `sf`. `None` when the basis does not fit
    /// this standard form (row/column counts, duplicates, artificials) or
    /// is numerically singular — callers just skip Gomory separation then.
    pub(crate) fn new(
        sf: &'a StandardForm,
        opts: &SolveOptions,
        basis: &Basis,
    ) -> Option<TableauView<'a>> {
        let m = sf.nrows();
        let n = sf.ncols();
        if basis.basic.len() != m || basis.at_upper.len() != n {
            return None;
        }
        let mut seen = vec![false; n];
        for &j in &basis.basic {
            if j >= n || seen[j] {
                return None;
            }
            seen[j] = true;
        }
        let mut e = Engine::cold(sf, opts);
        e.basis.copy_from_slice(&basis.basic);
        e.in_basis.fill(false);
        for &j in &basis.basic {
            e.in_basis[j] = true;
        }
        for j in 0..n {
            e.at_upper[j] = basis.at_upper[j] && e.upper[j].is_finite();
        }
        if !e.refactor() {
            return None;
        }
        Some(TableauView { e })
    }

    /// Number of rows (= basis positions).
    pub(crate) fn nrows(&self) -> usize {
        self.e.m
    }

    /// Column basic in row `r`.
    pub(crate) fn basic_col(&self, r: usize) -> usize {
        self.e.basis[r]
    }

    /// Current value of the variable basic in row `r`.
    pub(crate) fn basic_value(&self, r: usize) -> f64 {
        self.e.x_basic[r]
    }

    /// Whether nonbasic column `j` rests at its upper bound.
    pub(crate) fn at_upper(&self, j: usize) -> bool {
        self.e.at_upper[j]
    }

    /// Whether column `j` is basic.
    pub(crate) fn is_basic(&self, j: usize) -> bool {
        self.e.in_basis[j]
    }

    /// Fills `alpha` with tableau row `r` of `B⁻¹A` over the structural +
    /// slack columns and returns the row's right-hand side `(B⁻¹b)ᵣ`.
    /// The returned equality `Σⱼ alpha[j]·xⱼ = rhs` holds for every point
    /// with `Ax = b` — it is the base row Gomory cuts derive from.
    pub(crate) fn row(&mut self, r: usize, alpha: &mut Vec<f64>) -> f64 {
        self.e.inverse_row(r);
        let n = self.e.n;
        alpha.clear();
        alpha.extend((0..n).map(|j| self.e.col_dot(j, &self.e.sr)));
        self.e
            .sr
            .iter()
            .zip(&self.e.sf.b)
            .map(|(&y, &b)| y * b)
            .sum()
    }
}

/// Phase-2 cost vector: the standard-form objective on structural + slack
/// columns, zero on artificials.
fn phase2_cost(sf: &StandardForm, n_total: usize) -> Vec<f64> {
    let mut cost = vec![0.0; n_total];
    cost[..sf.ncols()].copy_from_slice(&sf.c);
    cost
}

/// Tries to warm-start from a basis hint: refactorize the parent basis
/// directly (no tableau rebuild), then repair primal feasibility with
/// dual simplex. `None` means "fall back to the cold path".
fn try_warm<'a>(
    sf: &'a StandardForm,
    opts: &SolveOptions,
    hint: &Basis,
) -> Result<Option<Engine<'a>>, SolveError> {
    let m = sf.nrows();
    let n = sf.ncols();
    // layout compatibility: same row/column counts, all-structural basis,
    // no duplicate columns
    if hint.basic.len() != m || hint.at_upper.len() != n {
        return Ok(None);
    }
    let mut seen = vec![false; n];
    for &j in &hint.basic {
        if j >= n || seen[j] {
            return Ok(None);
        }
        seen[j] = true;
    }
    let mut e = Engine::cold(sf, opts);
    e.basis.copy_from_slice(&hint.basic);
    e.in_basis.fill(false);
    for &j in &hint.basic {
        e.in_basis[j] = true;
    }
    for j in 0..n {
        // resting bounds may have been tightened since the hint was taken;
        // never rest at an infinite bound
        e.at_upper[j] = hint.at_upper[j] && e.upper[j].is_finite();
    }
    // artificials: nonbasic at zero and permanently banned
    for j in n..e.n_total {
        e.banned[j] = true;
    }
    if !e.refactor() {
        return Ok(None); // numerically singular hint
    }
    if e.primal_infeasibility() <= FEAS_TOL {
        return Ok(Some(e));
    }
    let cost = phase2_cost(sf, e.n_total);
    match e.dual_repair(&cost, opts)? {
        true => Ok(Some(e)),
        false => Ok(None),
    }
}

/// Solves the standard-form LP with the revised simplex, optionally
/// warm-starting from `hint`. Same contract as the dense engine: warm and
/// cold paths return the same optimum; the hint only changes how many
/// pivots it takes to get there.
pub fn solve_standard_revised(
    sf: &StandardForm,
    opts: &SolveOptions,
    hint: Option<&Basis>,
) -> Result<LpPoint, SolveError> {
    if let Some(h) = hint {
        // on any trouble the attempt is discarded and we fall through to
        // the cold two-phase path below
        if let Some(mut e) = try_warm(sf, opts, h)? {
            let cost = phase2_cost(sf, e.n_total);
            e.run(&cost, opts)?;
            return Ok(e.finish(true));
        }
    }
    let mut e = Engine::cold(sf, opts);
    // --- phase 1: minimize the sum of artificials ---
    let mut cost1 = vec![0.0; e.n_total];
    for c in cost1.iter_mut().skip(e.n) {
        *c = 1.0;
    }
    e.run(&cost1, opts)?;
    let art_sum: f64 = (0..e.m)
        .filter(|&k| e.basis[k] >= e.n)
        .map(|k| e.x_basic[k])
        .sum();
    if art_sum > FEAS_TOL {
        return Err(SolveError::Infeasible);
    }
    e.drive_out_artificials()?;
    for j in e.n..e.n_total {
        e.banned[j] = true;
    }
    // clean slate for phase 2: fold the eta file back into fresh factors
    // and recompute x_B exactly
    if !e.refactor() {
        return Err(SolveError::IterationLimit {
            iterations: e.iterations,
        });
    }
    // --- phase 2: real objective ---
    let cost2 = phase2_cost(sf, e.n_total);
    e.run(&cost2, opts)?;
    Ok(e.finish(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense};
    use crate::options::SimplexEngine;
    use crate::simplex::{solve_lp_relaxation, solve_standard, solve_standard_warm};

    fn opts() -> SolveOptions {
        SolveOptions {
            engine: SimplexEngine::Revised,
            ..SolveOptions::default()
        }
    }

    fn dense_opts() -> SolveOptions {
        SolveOptions {
            engine: SimplexEngine::DenseTableau,
            ..SolveOptions::default()
        }
    }

    #[test]
    fn classic_lp_matches_dense() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Le, 4.0);
        m.add_con(LinExpr::new().term(y, 2.0), Cmp::Le, 12.0);
        m.add_con(LinExpr::new().term(x, 3.0).term(y, 2.0), Cmp::Le, 18.0);
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 5.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        let d = solve_lp_relaxation(&m, &dense_opts()).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.objective - d.objective).abs() < 1e-9);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 2.0);
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Infeasible
        );
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn telemetry_counts_refactorizations() {
        // enough columns to force pivots; a tiny refactor interval forces
        // several refactorizations and a bounded eta file
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.num_var(&format!("x{i}"), 0.0, 3.0))
            .collect();
        for w in vars.windows(2) {
            m.add_con(
                LinExpr::new().term(w[0], 1.0).term(w[1], 1.0),
                Cmp::Le,
                4.0,
            );
        }
        m.set_objective(LinExpr::sum(vars.iter().map(|&v| (v, 1.0))));
        let tight = SolveOptions {
            refactor_interval: 2,
            ..opts()
        };
        let sf = StandardForm::from_model(&m).unwrap();
        let p = solve_standard(&sf, &tight).unwrap();
        assert!(p.telemetry.refactorizations > 0, "{:?}", p.telemetry);
        assert!(p.telemetry.max_eta_len <= 2);
        let loose = solve_standard(&sf, &opts()).unwrap();
        assert!((loose.objective - p.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_refactorizes_parent_basis() {
        // knapsack LP, tighten a bound, warm start from the parent basis
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 4.0);
        let y = m.num_var("y", 0.0, 4.0);
        let z = m.num_var("z", 0.0, 4.0);
        m.add_con(
            LinExpr::new().term(x, 2.0).term(y, 3.0).term(z, 1.0),
            Cmp::Le,
            10.0,
        );
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 4.0).term(z, 1.0));
        let sf = StandardForm::from_model(&m).unwrap();
        let parent = solve_standard(&sf, &opts()).unwrap();
        assert!(!parent.warm);
        let mut child = m.clone();
        child.vars[0].upper = 1.0;
        let csf = StandardForm::from_model(&child).unwrap();
        let warm = solve_standard_warm(&csf, &opts(), Some(&parent.basis)).unwrap();
        let cold = solve_standard(&csf, &opts()).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(warm.warm, "expected the sparse warm path to succeed");
        // the warm path refactorized the parent basis directly
        assert!(warm.telemetry.refactorizations >= 1);
    }

    #[test]
    fn singular_warm_hint_falls_back_to_cold() {
        // the two equality rows are scalar multiples, so the structural
        // columns x = (1, 2) and y = (1, 2) are parallel: hinting {x, y}
        // basic hands the warm path a singular basis to refactorize
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Eq, 4.0);
        m.set_objective(LinExpr::var(x));
        let sf = StandardForm::from_model(&m).unwrap();
        let hint = Basis {
            basic: vec![0, 1],
            at_upper: vec![false; sf.ncols()],
        };
        let cold = solve_standard(&sf, &opts()).unwrap();
        let s = solve_standard_warm(&sf, &opts(), Some(&hint)).unwrap();
        assert!(!s.warm, "singular hint must fall back");
        assert!((s.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn degenerate_redundant_rows_terminate() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        for k in 1..=6 {
            m.add_con(
                LinExpr::new().term(x, k as f64).term(y, k as f64),
                Cmp::Le,
                k as f64 * 4.0,
            );
        }
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bound_flips_and_fixed_vars() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 2.0, 2.0);
        let y = m.num_var("y", 0.0, 1.0);
        let z = m.num_var("z", 0.0, 1.0);
        m.add_con(LinExpr::new().term(y, 1.0).term(z, 1.0), Cmp::Le, 1.5);
        m.set_objective(
            LinExpr::new().term(x, 1.0).term(y, 1.0).term(z, 1.0),
        );
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 3.5).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn free_and_negated_variables() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Ge, -7.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-6);
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", f64::NEG_INFINITY, 9.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 1.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
    }

    /// Beale's classic cycling example: a dense tableau with naive
    /// Dantzig pricing cycles forever on it; the Bland switch must
    /// terminate both engines at the optimum (-0.05).
    #[test]
    fn beale_cycling_instance_terminates() {
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.num_var("x1", 0.0, f64::INFINITY);
        let x2 = m.num_var("x2", 0.0, f64::INFINITY);
        let x3 = m.num_var("x3", 0.0, f64::INFINITY);
        let x4 = m.num_var("x4", 0.0, f64::INFINITY);
        m.add_con(
            LinExpr::new()
                .term(x1, 0.25)
                .term(x2, -60.0)
                .term(x3, -0.04)
                .term(x4, 9.0),
            Cmp::Le,
            0.0,
        );
        m.add_con(
            LinExpr::new()
                .term(x1, 0.5)
                .term(x2, -90.0)
                .term(x3, -0.02)
                .term(x4, 3.0),
            Cmp::Le,
            0.0,
        );
        m.add_con(LinExpr::var(x3), Cmp::Le, 1.0);
        m.set_objective(
            LinExpr::new()
                .term(x1, -0.75)
                .term(x2, 150.0)
                .term(x3, -0.02)
                .term(x4, 6.0),
        );
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        let d = solve_lp_relaxation(&m, &dense_opts()).unwrap();
        assert!((s.objective + 0.05).abs() < 1e-6, "got {}", s.objective);
        assert!((s.objective - d.objective).abs() < 1e-9);
    }

    #[test]
    fn no_constraint_problem() {
        // m == 0: pure bound optimization, empty basis throughout
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 5.0);
        let y = m.num_var("y", -1.0, 2.0);
        m.set_objective(LinExpr::new().term(x, 2.0).term(y, -1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 11.0).abs() < 1e-9);
    }
}
