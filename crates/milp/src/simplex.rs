//! Bounded-variable, two-phase primal simplex on a dense tableau.
//!
//! The implementation follows the textbook upper-bounded simplex method
//! (see e.g. Chvátal, "Linear Programming", ch. 8):
//!
//! * nonbasic variables rest at their lower *or* upper bound,
//! * the ratio test accounts for basic variables hitting either bound and
//!   for the entering variable reaching its opposite bound (a "bound flip"
//!   that changes no basis),
//! * phase 1 minimizes the sum of per-row artificial variables; rows are
//!   pre-scaled so every artificial starts basic at a non-negative value,
//! * Dantzig pricing with an automatic switch to Bland's rule after an
//!   iteration threshold guarantees termination despite degeneracy.

use crate::error::SolveError;
use crate::options::SolveOptions;
use crate::solution::Solution;
use crate::standard::{Dense, StandardForm};
use crate::Model;

/// Minimum absolute pivot element accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Reduced-cost threshold for entering eligibility.
const COST_TOL: f64 = 1e-7;
/// Residual threshold for phase-1 feasibility.
const FEAS_TOL: f64 = 1e-6;

/// Raw LP solution in standard-form coordinates.
#[derive(Debug, Clone)]
pub struct LpPoint {
    /// Value per standard-form column.
    pub x: Vec<f64>,
    /// Objective in the ORIGINAL model sense (incl. constant).
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// Working state of the tableau simplex.
struct Tableau {
    /// `B⁻¹ A` for all columns, artificials included; one extra column at
    /// the end holds `B⁻¹ b`.
    t: Dense,
    /// Column index of the basic variable for each row.
    basis: Vec<usize>,
    /// Nonbasic-at-upper flags (meaningless for basic columns).
    at_upper: Vec<bool>,
    /// Per-column lower bounds (artificials included).
    lower: Vec<f64>,
    /// Per-column upper bounds.
    upper: Vec<f64>,
    /// First artificial column index.
    art_start: usize,
    /// Columns banned from entering (artificials that left the basis).
    banned: Vec<bool>,
    /// Total pivots + bound flips performed.
    iterations: usize,
}

impl Tableau {
    fn ncols(&self) -> usize {
        self.t.ncols - 1 // last column is rhs
    }

    fn nrows(&self) -> usize {
        self.t.nrows
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.t.at(r, self.t.ncols - 1)
    }

    /// Current value of every column: basic from the tableau, nonbasic from
    /// its resting bound.
    fn values(&self) -> Vec<f64> {
        let n = self.ncols();
        let mut x = vec![0.0; n];
        let mut is_basic = vec![false; n];
        for &bj in &self.basis {
            is_basic[bj] = true;
        }
        for j in 0..n {
            if !is_basic[j] {
                x[j] = if self.at_upper[j] {
                    self.upper[j]
                } else {
                    self.lower[j]
                };
            }
        }
        // xB = B^-1 b - sum_j nonbasic T[:,j] * x_j
        for r in 0..self.nrows() {
            let mut v = self.rhs(r);
            let row = self.t.row(r);
            for j in 0..n {
                if !is_basic[j] && x[j] != 0.0 {
                    v -= row[j] * x[j];
                }
            }
            x[self.basis[r]] = v;
        }
        x
    }

    /// Performs a Gaussian pivot on `(row, col)`, updating the cost row too.
    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let ncols = self.t.ncols;
        let piv = self.t.at(row, col);
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for v in self.t.row_mut(row) {
            *v *= inv;
        }
        // snapshot pivot row to avoid aliasing
        let prow: Vec<f64> = self.t.row(row).to_vec();
        for r in 0..self.nrows() {
            if r == row {
                continue;
            }
            let factor = self.t.at(r, col);
            if factor != 0.0 {
                let rrow = self.t.row_mut(r);
                for k in 0..ncols {
                    rrow[k] -= factor * prow[k];
                }
            }
        }
        let cfac = cost[col];
        if cfac != 0.0 {
            for k in 0..ncols - 1 {
                cost[k] -= cfac * prow[k];
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// One simplex phase: minimize `cost · x` until optimal.
    /// `cost` is the current reduced-cost row (updated in place).
    fn run(&mut self, cost: &mut [f64], opts: &SolveOptions) -> Result<(), SolveError> {
        let n = self.ncols();
        let bland_after = 20 * (self.nrows() + n) + 200;
        let mut local_iters = 0usize;
        loop {
            if self.iterations >= opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            local_iters += 1;
            let bland = local_iters > bland_after;
            let x = self.values();
            let mut is_basic = vec![false; n];
            for &bj in &self.basis {
                is_basic[bj] = true;
            }
            // --- pricing ---
            let mut enter: Option<(usize, f64, bool)> = None; // (col, |score|, from_upper)
            for j in 0..n {
                if is_basic[j] || self.banned[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let d = cost[j];
                let (eligible, from_upper) = if self.at_upper[j] {
                    (d > COST_TOL, true)
                } else {
                    (d < -COST_TOL, false)
                };
                if eligible {
                    if bland {
                        enter = Some((j, d.abs(), from_upper));
                        break;
                    }
                    match enter {
                        Some((_, best, _)) if d.abs() <= best => {}
                        _ => enter = Some((j, d.abs(), from_upper)),
                    }
                }
            }
            let Some((j, _, from_upper)) = enter else {
                return Ok(()); // optimal for this phase
            };
            let dir = if from_upper { -1.0 } else { 1.0 };
            // --- ratio test ---
            let span = self.upper[j] - self.lower[j]; // may be inf
            let mut delta = span;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            let mut best_piv = 0.0;
            for r in 0..self.nrows() {
                let t = self.t.at(r, j) * dir;
                let bj = self.basis[r];
                let xb = x[bj];
                if t > PIVOT_TOL {
                    let limit = ((xb - self.lower[bj]) / t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, false));
                        best_piv = t.abs();
                    }
                } else if t < -PIVOT_TOL {
                    if self.upper[bj].is_infinite() {
                        continue;
                    }
                    let limit = ((self.upper[bj] - xb) / -t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, true));
                        best_piv = t.abs();
                    }
                }
            }
            if delta.is_infinite() {
                return Err(SolveError::Unbounded);
            }
            match leave {
                None => {
                    // bound flip: entering runs across its whole span
                    self.at_upper[j] = !self.at_upper[j];
                    self.iterations += 1;
                }
                Some((r, leaves_at_upper)) => {
                    let leaving = self.basis[r];
                    self.at_upper[leaving] = leaves_at_upper;
                    if leaving >= self.art_start {
                        self.banned[leaving] = true;
                    }
                    self.pivot(r, j, cost);
                }
            }
        }
    }
}

/// Solves the standard-form LP. Returns values for all structural + slack
/// columns and the objective in the original model sense.
pub fn solve_standard(sf: &StandardForm, opts: &SolveOptions) -> Result<LpPoint, SolveError> {
    let m = sf.nrows();
    let n = sf.ncols();
    let n_total = n + m; // + artificials
    let mut t = Dense::zeros(m, n_total + 1);
    // residuals with all columns at their (finite) lower bounds
    let mut lower = sf.lower.clone();
    let mut upper = sf.upper.clone();
    lower.extend(std::iter::repeat(0.0).take(m));
    upper.extend(std::iter::repeat(f64::INFINITY).take(m));
    for r in 0..m {
        let mut resid = sf.b[r];
        for j in 0..n {
            resid -= sf.a.at(r, j) * sf.lower[j];
        }
        let sign = if resid < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            *t.at_mut(r, j) = sign * sf.a.at(r, j);
        }
        *t.at_mut(r, n + r) = 1.0; // artificial
        *t.at_mut(r, n_total) = sign * sf.b[r];
    }
    let mut tab = Tableau {
        t,
        basis: (n..n_total).collect(),
        at_upper: vec![false; n_total],
        lower,
        upper,
        art_start: n,
        banned: vec![false; n_total],
        iterations: 0,
    };
    // --- phase 1: minimize sum of artificials ---
    // reduced costs: d_j = c1_j - 1' T[:,j]; artificials basic => d_art = 0
    let mut cost = vec![0.0; n_total];
    for j in 0..n {
        let mut s = 0.0;
        for r in 0..m {
            s += tab.t.at(r, j);
        }
        cost[j] = -s;
    }
    tab.run(&mut cost, opts)?;
    let x = tab.values();
    let art_sum: f64 = x[n..n_total].iter().sum();
    if art_sum > FEAS_TOL {
        return Err(SolveError::Infeasible);
    }
    // drive basic artificials out (degenerate pivots) or pin them at zero
    for r in 0..m {
        if tab.basis[r] >= n {
            let mut pivoted = false;
            for j in 0..n {
                let basic_elsewhere = tab.basis.iter().any(|&b| b == j);
                if !basic_elsewhere && tab.t.at(r, j).abs() > 1e-7 {
                    tab.pivot(r, j, &mut cost);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // redundant row: pin the artificial so it can never move
                let a = tab.basis[r];
                tab.lower[a] = 0.0;
                tab.upper[a] = 0.0;
            }
        }
    }
    // ban all artificials from re-entering
    for j in n..n_total {
        tab.banned[j] = true;
    }
    // --- phase 2: real objective ---
    // reduced costs d = c - c_B' T
    let mut cost2 = vec![0.0; n_total];
    cost2[..n].copy_from_slice(&sf.c);
    let cb: Vec<f64> = tab
        .basis
        .iter()
        .map(|&bj| if bj < n { sf.c[bj] } else { 0.0 })
        .collect();
    for j in 0..n_total {
        let mut s = 0.0;
        for r in 0..m {
            if cb[r] != 0.0 {
                s += cb[r] * tab.t.at(r, j);
            }
        }
        cost2[j] -= s;
    }
    tab.run(&mut cost2, opts)?;
    let xfull = tab.values();
    let x: Vec<f64> = xfull[..n].to_vec();
    let objective = sf.model_objective(&x);
    Ok(LpPoint {
        x,
        objective,
        iterations: tab.iterations,
    })
}

/// Solves the LP relaxation of `model` (integrality dropped) and maps the
/// optimum back to model-variable space.
pub fn solve_lp_relaxation(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let sf = StandardForm::from_model(model)?;
    let point = solve_standard(&sf, opts)?;
    let values = sf.extract(&point.x);
    Ok(Solution {
        values,
        objective: point.objective,
        iterations: point.iterations,
        nodes: 0,
        proven_optimal: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense};

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn simple_max_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic; opt 36 @ (2,6))
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Le, 4.0);
        m.add_con(LinExpr::new().term(y, 2.0), Cmp::Le, 12.0);
        m.add_con(LinExpr::new().term(x, 3.0).term(y, 2.0), Cmp::Le, 18.0);
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 5.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y >= 3, x - y = 1, x,y >= 0 => x=2, y=1, obj 3
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounded_variables_flip() {
        // max x + y with x,y in [0, 1], x + y <= 1.5 => obj 1.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 1.5);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 2.0);
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + 3 >= 0 => x = -3
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", -5.0, 5.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, -3.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective + 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable_split() {
        // min |shape|: min x s.t. x >= -7, x free => -7
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Ge, -7.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-6);
    }

    #[test]
    fn negated_variable_with_finite_upper_only() {
        // max x s.t. x <= 9 (bound), x >= 1 => 9
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", f64::NEG_INFINITY, 9.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 1.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
        assert!((s.values[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // many redundant constraints through the same vertex
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        for k in 1..=6 {
            m.add_con(
                LinExpr::new().term(x, k as f64).term(y, k as f64),
                Cmp::Le,
                k as f64 * 4.0,
            );
        }
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 2.0, 2.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.values[0] - 2.0).abs() < 1e-9);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows_ok() {
        // x + y = 2 twice (linearly dependent) — phase 1 must cope
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Eq, 4.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
    }
}
