//! LP entry points and the dense-tableau engine (differential oracle).
//!
//! [`solve_standard_warm`] dispatches on [`SolveOptions::engine`]: the
//! default is the sparse revised simplex in [`crate::revised`]; the dense
//! tableau implemented here stays available as an independently coded
//! oracle for differential testing ([`crate::options::SimplexEngine`]).
//!
//! The dense implementation follows the textbook upper-bounded simplex
//! method (see e.g. Chvátal, "Linear Programming", ch. 8):
//!
//! * nonbasic variables rest at their lower *or* upper bound,
//! * the ratio test accounts for basic variables hitting either bound and
//!   for the entering variable reaching its opposite bound (a "bound flip"
//!   that changes no basis),
//! * phase 1 minimizes the sum of per-row artificial variables; rows are
//!   pre-scaled so every artificial starts basic at a non-negative value,
//! * Dantzig pricing with an automatic switch to Bland's rule after an
//!   iteration threshold guarantees termination despite degeneracy.
//!
//! # Warm starts
//!
//! Branch & bound re-solves near-identical LPs: a child differs from its
//! parent by one tightened variable bound. [`solve_standard_warm`] accepts
//! the parent's final [`Basis`], rebuilds the tableau around it, and
//! repairs the (usually small) primal infeasibility with bounded-variable
//! **dual simplex** pivots instead of running phase 1 from scratch. The
//! repair is purely an accelerator: on any trouble — singular basis hint,
//! layout mismatch, iteration budget, no eligible entering column — it
//! falls back to the cold two-phase path, so warm and cold solves always
//! agree (every LP is solved to proven optimality either way).

use crate::error::SolveError;
use crate::options::{SimplexEngine, SolveOptions};
use crate::solution::Solution;
use crate::standard::{Dense, StandardForm};
use crate::stats::LpTelemetry;
use crate::Model;

/// Minimum absolute pivot element accepted.
const PIVOT_TOL: f64 = 1e-9;
/// Reduced-cost threshold for entering eligibility.
const COST_TOL: f64 = 1e-7;
/// Residual threshold for phase-1 feasibility.
const FEAS_TOL: f64 = 1e-6;

/// A simplex basis: which column is basic in each row, plus the resting
/// bound of every nonbasic structural/slack column.
///
/// Returned by every LP solve and accepted back as a warm-start hint; see
/// [`solve_standard_warm`]. Artificial columns never appear in `basic`.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Column index of the basic variable, one per row.
    pub basic: Vec<usize>,
    /// Nonbasic-at-upper flags for the structural + slack columns
    /// (meaningless for basic columns).
    pub at_upper: Vec<bool>,
}

/// Raw LP solution in standard-form coordinates.
#[derive(Debug, Clone)]
pub struct LpPoint {
    /// Value per standard-form column.
    pub x: Vec<f64>,
    /// Objective in the ORIGINAL model sense (incl. constant).
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
    /// Final basis, usable as a warm-start hint for a nearby LP.
    pub basis: Basis,
    /// True when this solve reused a warm-start hint (vs. cold two-phase).
    pub warm: bool,
    /// Revised-engine counters (all zero on the dense path).
    pub telemetry: LpTelemetry,
}

/// Working state of the tableau simplex.
struct Tableau {
    /// `B⁻¹ A` for all columns, artificials included; one extra column at
    /// the end holds `B⁻¹ b`.
    t: Dense,
    /// Column index of the basic variable for each row.
    basis: Vec<usize>,
    /// Nonbasic-at-upper flags (meaningless for basic columns).
    at_upper: Vec<bool>,
    /// Per-column lower bounds (artificials included).
    lower: Vec<f64>,
    /// Per-column upper bounds.
    upper: Vec<f64>,
    /// First artificial column index.
    art_start: usize,
    /// Columns banned from entering (artificials that left the basis).
    banned: Vec<bool>,
    /// Total pivots + bound flips performed.
    iterations: usize,
    /// Scratch: current value per column, refreshed by
    /// [`Tableau::refresh_values`] (valid until the next pivot).
    xs: Vec<f64>,
    /// Scratch: per-column basic flag, refreshed alongside `xs`.
    is_basic: Vec<bool>,
    /// Scratch: pivot-row snapshot used inside [`Tableau::pivot`].
    prow: Vec<f64>,
}

impl Tableau {
    fn ncols(&self) -> usize {
        self.t.ncols - 1 // last column is rhs
    }

    fn nrows(&self) -> usize {
        self.t.nrows
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.t.at(r, self.t.ncols - 1)
    }

    /// Refreshes the `xs`/`is_basic` scratch buffers with the current value
    /// of every column: basic from the tableau, nonbasic from its resting
    /// bound. No allocation — the previous engine rebuilt both vectors on
    /// every simplex iteration.
    fn refresh_values(&mut self) {
        let n = self.ncols();
        self.is_basic.fill(false);
        for &bj in &self.basis {
            self.is_basic[bj] = true;
        }
        for j in 0..n {
            self.xs[j] = if self.is_basic[j] {
                0.0
            } else if self.at_upper[j] {
                self.upper[j]
            } else {
                self.lower[j]
            };
        }
        // xB = B^-1 b - sum_j nonbasic T[:,j] * x_j
        for r in 0..self.nrows() {
            let mut v = self.rhs(r);
            let row = self.t.row(r);
            for ((&rj, &xj), &basic) in row.iter().zip(&self.xs).zip(&self.is_basic) {
                if !basic && xj != 0.0 {
                    v -= rj * xj;
                }
            }
            self.xs[self.basis[r]] = v;
        }
    }

    /// Current value of every column (refreshes the scratch buffer).
    fn values(&mut self) -> &[f64] {
        self.refresh_values();
        &self.xs
    }

    /// Performs a Gaussian pivot on `(row, col)`, updating the cost row too.
    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let piv = self.t.at(row, col);
        debug_assert!(piv.abs() > PIVOT_TOL);
        let inv = 1.0 / piv;
        for v in self.t.row_mut(row) {
            *v *= inv;
        }
        // snapshot pivot row (reused scratch) to avoid aliasing
        self.prow.copy_from_slice(self.t.row(row));
        for r in 0..self.nrows() {
            if r == row {
                continue;
            }
            let factor = self.t.at(r, col);
            if factor != 0.0 {
                let rrow = self.t.row_mut(r);
                for (rv, &pv) in rrow.iter_mut().zip(&self.prow) {
                    *rv -= factor * pv;
                }
            }
        }
        let cfac = cost[col];
        if cfac != 0.0 {
            // cost has `ncols - 1` entries (no rhs column); zip truncates
            for (cv, &pv) in cost.iter_mut().zip(&self.prow) {
                *cv -= cfac * pv;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// One simplex phase: minimize `cost · x` until optimal.
    /// `cost` is the current reduced-cost row (updated in place).
    fn run(&mut self, cost: &mut [f64], opts: &SolveOptions) -> Result<(), SolveError> {
        let n = self.ncols();
        let bland_after = 20 * (self.nrows() + n) + 200;
        let mut local_iters = 0usize;
        loop {
            if self.iterations >= opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            local_iters += 1;
            let bland = local_iters > bland_after;
            self.refresh_values();
            // --- pricing ---
            let mut enter: Option<(usize, f64, bool)> = None; // (col, |score|, from_upper)
            for (j, &d) in cost.iter().enumerate() {
                if self.is_basic[j] || self.banned[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let (eligible, from_upper) = if self.at_upper[j] {
                    (d > COST_TOL, true)
                } else {
                    (d < -COST_TOL, false)
                };
                if eligible {
                    if bland {
                        enter = Some((j, d.abs(), from_upper));
                        break;
                    }
                    match enter {
                        Some((_, best, _)) if d.abs() <= best => {}
                        _ => enter = Some((j, d.abs(), from_upper)),
                    }
                }
            }
            let Some((j, _, from_upper)) = enter else {
                return Ok(()); // optimal for this phase
            };
            let dir = if from_upper { -1.0 } else { 1.0 };
            // --- ratio test ---
            let span = self.upper[j] - self.lower[j]; // may be inf
            let mut delta = span;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            let mut best_piv = 0.0;
            for r in 0..self.nrows() {
                let t = self.t.at(r, j) * dir;
                let bj = self.basis[r];
                let xb = self.xs[bj];
                if t > PIVOT_TOL {
                    let limit = ((xb - self.lower[bj]) / t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, false));
                        best_piv = t.abs();
                    }
                } else if t < -PIVOT_TOL {
                    if self.upper[bj].is_infinite() {
                        continue;
                    }
                    let limit = ((self.upper[bj] - xb) / -t).max(0.0);
                    if limit < delta - 1e-12
                        || (limit < delta + 1e-12 && t.abs() > best_piv && !bland)
                    {
                        delta = limit.min(delta);
                        leave = Some((r, true));
                        best_piv = t.abs();
                    }
                }
            }
            if delta.is_infinite() {
                return Err(SolveError::Unbounded);
            }
            match leave {
                None => {
                    // bound flip: entering runs across its whole span
                    self.at_upper[j] = !self.at_upper[j];
                    self.iterations += 1;
                }
                Some((r, leaves_at_upper)) => {
                    let leaving = self.basis[r];
                    self.at_upper[leaving] = leaves_at_upper;
                    if leaving >= self.art_start {
                        self.banned[leaving] = true;
                    }
                    self.pivot(r, j, cost);
                }
            }
        }
    }

    /// Bounded-variable dual simplex: repairs primal infeasibility while
    /// keeping the (assumed dual-feasible) reduced costs optimal-signed.
    ///
    /// Returns `Ok(true)` when a primal-feasible basis was reached,
    /// `Ok(false)` when the caller should fall back to a cold solve (no
    /// eligible entering column or iteration budget exhausted — the former
    /// proves infeasibility only when the costs really are dual feasible,
    /// which a warm-start hint cannot guarantee, so we never conclude
    /// `Infeasible` here).
    fn dual_repair(&mut self, cost: &mut [f64], opts: &SolveOptions) -> Result<bool, SolveError> {
        let n = self.ncols();
        let budget = 5 * (self.nrows() + n) + 100;
        let mut local = 0usize;
        loop {
            if self.iterations >= opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            if local >= budget {
                return Ok(false);
            }
            local += 1;
            self.refresh_values();
            // --- pick the most infeasible basic variable ---
            let mut worst: Option<(usize, f64, bool)> = None; // (row, violation, to_upper)
            for r in 0..self.nrows() {
                let bj = self.basis[r];
                let xb = self.xs[bj];
                let below = self.lower[bj] - xb;
                let above = xb - self.upper[bj];
                if below > FEAS_TOL && worst.is_none_or(|(_, v, _)| below > v) {
                    worst = Some((r, below, false));
                }
                if above > FEAS_TOL && worst.is_none_or(|(_, v, _)| above > v) {
                    worst = Some((r, above, true));
                }
            }
            let Some((r, _, to_upper)) = worst else {
                return Ok(true); // primal feasible
            };
            // --- dual ratio test over nonbasic columns ---
            // Leaving variable xB[r] must move toward its violated bound:
            // xB[r] = rhs[r] - Σ t[r][j]·x[j], so moving nonbasic x[j] off
            // its bound by δ changes xB[r] by -t[r][j]·δ, with δ > 0 when
            // resting at lower and δ < 0 when resting at upper.
            let mut enter: Option<(usize, f64)> = None; // (col, ratio)
            for (j, &cj) in cost.iter().enumerate() {
                if self.is_basic[j] || self.banned[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let t = self.t.at(r, j);
                if t.abs() <= PIVOT_TOL {
                    continue;
                }
                let increases = if self.at_upper[j] { t > 0.0 } else { t < 0.0 };
                // need xB[r] to increase when below lower, decrease when above upper
                if increases == to_upper {
                    continue;
                }
                let ratio = (cj / t).abs();
                match enter {
                    Some((_, best)) if best <= ratio => {}
                    _ => enter = Some((j, ratio)),
                }
            }
            let Some((j, _)) = enter else {
                return Ok(false); // let the cold path decide feasibility
            };
            let leaving = self.basis[r];
            self.at_upper[leaving] = to_upper;
            if leaving >= self.art_start {
                self.banned[leaving] = true;
            }
            self.pivot(r, j, cost);
        }
    }

    /// Snapshot of the current basis for warm-starting later solves.
    fn snapshot(&self) -> Basis {
        Basis {
            basic: self.basis.clone(),
            at_upper: self.at_upper[..self.art_start].to_vec(),
        }
    }
}

/// Builds the initial tableau with an all-artificial basis.
fn fresh_tableau(sf: &StandardForm) -> Tableau {
    let m = sf.nrows();
    let n = sf.ncols();
    let n_total = n + m; // + artificials
    let mut t = Dense::zeros(m, n_total + 1);
    // residuals with all columns at their (finite) lower bounds
    let mut lower = sf.lower.clone();
    let mut upper = sf.upper.clone();
    lower.extend(std::iter::repeat_n(0.0, m));
    upper.extend(std::iter::repeat_n(f64::INFINITY, m));
    let mut resid = sf.b.clone();
    for j in 0..n {
        let lj = sf.lower[j];
        if lj != 0.0 {
            for (r, v) in sf.a.col(j) {
                resid[r] -= v * lj;
            }
        }
    }
    let sign: Vec<f64> = resid
        .iter()
        .map(|&r| if r < 0.0 { -1.0 } else { 1.0 })
        .collect();
    for j in 0..n {
        for (r, v) in sf.a.col(j) {
            *t.at_mut(r, j) = sign[r] * v;
        }
    }
    for (r, &sg) in sign.iter().enumerate() {
        *t.at_mut(r, n + r) = 1.0; // artificial
        *t.at_mut(r, n_total) = sg * sf.b[r];
    }
    Tableau {
        t,
        basis: (n..n_total).collect(),
        at_upper: vec![false; n_total],
        lower,
        upper,
        art_start: n,
        banned: vec![false; n_total],
        iterations: 0,
        xs: vec![0.0; n_total],
        is_basic: vec![false; n_total],
        prow: vec![0.0; n_total + 1],
    }
}

/// Phase-2 reduced costs `d = c - c_B' T` for the current basis, written
/// into the reusable `cost2` buffer (no per-call temporaries).
fn phase2_costs_into(tab: &Tableau, sf: &StandardForm, cost2: &mut [f64]) {
    let n = sf.ncols();
    let n_total = tab.ncols();
    let m = tab.nrows();
    cost2[..n].copy_from_slice(&sf.c);
    cost2[n..n_total].fill(0.0);
    for r in 0..m {
        let bj = tab.basis[r];
        let cbr = if bj < n { sf.c[bj] } else { 0.0 };
        if cbr != 0.0 {
            let row = tab.t.row(r);
            for (j, c2) in cost2[..n_total].iter_mut().enumerate() {
                *c2 -= cbr * row[j];
            }
        }
    }
}

/// Runs phase 2 on a primal-feasible tableau and extracts the optimum.
fn finish(
    mut tab: Tableau,
    sf: &StandardForm,
    mut cost2: Vec<f64>,
    opts: &SolveOptions,
    warm: bool,
) -> Result<LpPoint, SolveError> {
    tab.run(&mut cost2, opts)?;
    let basis = tab.snapshot();
    let xfull = tab.values();
    let n = sf.ncols();
    let x: Vec<f64> = xfull[..n].to_vec();
    let objective = sf.model_objective(&x);
    Ok(LpPoint {
        x,
        objective,
        iterations: tab.iterations,
        basis,
        warm,
        telemetry: LpTelemetry::default(),
    })
}

/// Tries to rebuild a tableau around a warm-start basis hint and repair it
/// to primal feasibility with dual simplex. Returns the ready tableau and
/// phase-2 cost row, or `None` (with the pivots spent) on any trouble.
fn try_warm_tableau(
    sf: &StandardForm,
    opts: &SolveOptions,
    hint: &Basis,
) -> Result<Option<(Tableau, Vec<f64>)>, SolveError> {
    let m = sf.nrows();
    let n = sf.ncols();
    // layout compatibility: same row/column counts, all-structural basis,
    // no duplicate columns
    if hint.basic.len() != m || hint.at_upper.len() != n {
        return Ok(None);
    }
    let mut seen = vec![false; n];
    for &j in &hint.basic {
        if j >= n || seen[j] {
            return Ok(None);
        }
        seen[j] = true;
    }
    let mut tab = fresh_tableau(sf);
    for j in 0..n {
        // resting bounds may have been tightened since the hint was taken;
        // never rest at an infinite bound
        tab.at_upper[j] = hint.at_upper[j] && tab.upper[j].is_finite();
    }
    // Pivot the hinted basis in, one column per artificial row (Gaussian
    // elimination with partial pivoting over the not-yet-replaced rows).
    let mut dummy = vec![0.0; tab.t.ncols - 1];
    for &j in &hint.basic {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            if tab.basis[r] < n {
                continue; // row already holds a structural column
            }
            let p = tab.t.at(r, j).abs();
            if p > PIVOT_TOL && best.is_none_or(|(_, bp)| p > bp) {
                best = Some((r, p));
            }
        }
        match best {
            Some((r, _)) => tab.pivot(r, j, &mut dummy),
            None => return Ok(None), // numerically singular hint
        }
    }
    // ban artificials (all nonbasic at 0 now)
    for j in n..tab.ncols() {
        tab.banned[j] = true;
    }
    let mut cost2 = vec![0.0; tab.ncols()];
    phase2_costs_into(&tab, sf, &mut cost2);
    match tab.dual_repair(&mut cost2, opts)? {
        true => Ok(Some((tab, cost2))),
        false => Ok(None),
    }
}

/// Solves the standard-form LP cold (two phases from an artificial basis).
/// Returns values for all structural + slack columns and the objective in
/// the original model sense.
pub fn solve_standard(sf: &StandardForm, opts: &SolveOptions) -> Result<LpPoint, SolveError> {
    solve_standard_warm(sf, opts, None)
}

/// Solves the standard-form LP, optionally warm-starting from `hint` (the
/// [`Basis`] of a previously solved nearby LP — same constraint matrix,
/// possibly tightened bounds).
///
/// Dispatches on [`SolveOptions::engine`]. Warm and cold paths return the
/// same optimum; the hint only changes how many pivots it takes to get
/// there. [`LpPoint::warm`] reports which path ran.
pub fn solve_standard_warm(
    sf: &StandardForm,
    opts: &SolveOptions,
    hint: Option<&Basis>,
) -> Result<LpPoint, SolveError> {
    match opts.engine {
        SimplexEngine::Revised => crate::revised::solve_standard_revised(sf, opts, hint),
        SimplexEngine::DenseTableau => solve_standard_dense(sf, opts, hint),
    }
}

/// The dense-tableau path of [`solve_standard_warm`] (the differential
/// oracle engine).
fn solve_standard_dense(
    sf: &StandardForm,
    opts: &SolveOptions,
    hint: Option<&Basis>,
) -> Result<LpPoint, SolveError> {
    if let Some(h) = hint {
        // on any trouble the attempt is discarded and we fall through to
        // the cold two-phase path below
        if let Some((tab, cost2)) = try_warm_tableau(sf, opts, h)? {
            return finish(tab, sf, cost2, opts, true);
        }
    }
    let m = sf.nrows();
    let n = sf.ncols();
    let n_total = n + m;
    let mut tab = fresh_tableau(sf);
    // --- phase 1: minimize sum of artificials ---
    // reduced costs: d_j = c1_j - 1' T[:,j]; artificials basic => d_art = 0
    let mut cost = vec![0.0; n_total];
    for (j, cj) in cost.iter_mut().enumerate().take(n) {
        let mut s = 0.0;
        for r in 0..m {
            s += tab.t.at(r, j);
        }
        *cj = -s;
    }
    tab.run(&mut cost, opts)?;
    let x = tab.values();
    let art_sum: f64 = x[n..n_total].iter().sum();
    if art_sum > FEAS_TOL {
        return Err(SolveError::Infeasible);
    }
    // drive basic artificials out (degenerate pivots) or pin them at zero
    for r in 0..m {
        if tab.basis[r] >= n {
            let mut pivoted = false;
            for j in 0..n {
                let basic_elsewhere = tab.basis.contains(&j);
                if !basic_elsewhere && tab.t.at(r, j).abs() > 1e-7 {
                    tab.pivot(r, j, &mut cost);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // redundant row: pin the artificial so it can never move
                let a = tab.basis[r];
                tab.lower[a] = 0.0;
                tab.upper[a] = 0.0;
            }
        }
    }
    // ban all artificials from re-entering
    for j in n..n_total {
        tab.banned[j] = true;
    }
    // --- phase 2: real objective ---
    let mut cost2 = vec![0.0; n_total];
    phase2_costs_into(&tab, sf, &mut cost2);
    finish(tab, sf, cost2, opts, false)
}

/// Solves the LP relaxation of `model` (integrality dropped) and maps the
/// optimum back to model-variable space.
pub fn solve_lp_relaxation(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let (sol, _) = solve_lp_relaxation_warm(model, opts, None)?;
    Ok(sol)
}

/// Like [`solve_lp_relaxation`] but accepts a warm-start [`Basis`] hint and
/// returns the final LP point alongside the mapped solution so callers
/// (branch & bound) can chain warm starts.
pub fn solve_lp_relaxation_warm(
    model: &Model,
    opts: &SolveOptions,
    hint: Option<&Basis>,
) -> Result<(Solution, LpPoint), SolveError> {
    let sf = StandardForm::from_model(model)?;
    let hint = if opts.warm_start { hint } else { None };
    let point = solve_standard_warm(&sf, opts, hint)?;
    let values = sf.extract(&point.x);
    let sol = Solution {
        values,
        objective: point.objective,
        iterations: point.iterations,
        nodes: 0,
        proven_optimal: true,
        stats: crate::stats::SolveStats {
            lp_pivots: point.iterations,
            warm_started: point.warm as usize,
            refactorizations: point.telemetry.refactorizations,
            max_eta_len: point.telemetry.max_eta_len,
            ftran_time: std::time::Duration::from_nanos(point.telemetry.ftran_ns),
            btran_time: std::time::Duration::from_nanos(point.telemetry.btran_ns),
            ..Default::default()
        },
    };
    Ok((sol, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense};

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn simple_max_lp() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic; opt 36 @ (2,6))
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Le, 4.0);
        m.add_con(LinExpr::new().term(y, 2.0), Cmp::Le, 12.0);
        m.add_con(LinExpr::new().term(x, 3.0).term(y, 2.0), Cmp::Le, 18.0);
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 5.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y >= 3, x - y = 1, x,y >= 0 => x=2, y=1, obj 3
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 3.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, -1.0), Cmp::Eq, 1.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounded_variables_flip() {
        // max x + y with x,y in [0, 1], x + y <= 1.5 => obj 1.5
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.num_var("y", 0.0, 1.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 1.5);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 2.0);
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::var(x));
        assert_eq!(
            solve_lp_relaxation(&m, &opts()).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + 3 >= 0 => x = -3
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", -5.0, 5.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, -3.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective + 3.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable_split() {
        // min |shape|: min x s.t. x >= -7, x free => -7
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_con(LinExpr::var(x), Cmp::Ge, -7.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective + 7.0).abs() < 1e-6);
    }

    #[test]
    fn negated_variable_with_finite_upper_only() {
        // max x s.t. x <= 9 (bound), x >= 1 => 9
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", f64::NEG_INFINITY, 9.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 1.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
        assert!((s.values[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // many redundant constraints through the same vertex
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        let y = m.num_var("y", 0.0, f64::INFINITY);
        for k in 1..=6 {
            m.add_con(
                LinExpr::new().term(x, k as f64).term(y, k as f64),
                Cmp::Le,
                k as f64 * 4.0,
            );
        }
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 2.0, 2.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().term(x, 1.0).term(y, 1.0));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.values[0] - 2.0).abs() < 1e-9);
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows_ok() {
        // x + y = 2 twice (linearly dependent) — phase 1 must cope
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Eq, 2.0);
        m.add_con(LinExpr::new().term(x, 2.0).term(y, 2.0), Cmp::Eq, 4.0);
        m.set_objective(LinExpr::var(x));
        let s = solve_lp_relaxation(&m, &opts()).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    /// Builds the bounded knapsack LP used by the warm-start tests.
    fn knapsack_lp() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 4.0);
        let y = m.num_var("y", 0.0, 4.0);
        let z = m.num_var("z", 0.0, 4.0);
        m.add_con(
            LinExpr::new().term(x, 2.0).term(y, 3.0).term(z, 1.0),
            Cmp::Le,
            10.0,
        );
        m.set_objective(LinExpr::new().term(x, 3.0).term(y, 4.0).term(z, 1.0));
        m
    }

    #[test]
    fn warm_start_agrees_with_cold_after_bound_tightening() {
        let m = Model::clone(&knapsack_lp());
        let sf = StandardForm::from_model(&m).unwrap();
        let parent = solve_standard(&sf, &opts()).unwrap();
        assert!(!parent.warm);

        // tighten x's upper bound below its optimal value, like branching
        let mut child = m.clone();
        child.vars[0].upper = 1.0;
        let csf = StandardForm::from_model(&child).unwrap();
        let warm = solve_standard_warm(&csf, &opts(), Some(&parent.basis)).unwrap();
        let cold = solve_standard(&csf, &opts()).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        // the repair path is exercised (not just a fallback)
        assert!(warm.warm, "expected the warm path to succeed");
    }

    #[test]
    fn warm_start_with_bogus_hint_falls_back() {
        let m = knapsack_lp();
        let sf = StandardForm::from_model(&m).unwrap();
        let cold = solve_standard(&sf, &opts()).unwrap();
        // wrong dimensions: must be ignored
        let bogus = Basis {
            basic: vec![0, 1, 2, 3, 4],
            at_upper: vec![],
        };
        let s = solve_standard_warm(&sf, &opts(), Some(&bogus)).unwrap();
        assert!(!s.warm);
        assert!((s.objective - cold.objective).abs() < 1e-9);
        // duplicate basis entries: must be ignored too
        let dup = Basis {
            basic: vec![0; sf.nrows()],
            at_upper: vec![false; sf.ncols()],
        };
        let s2 = solve_standard_warm(&sf, &opts(), Some(&dup)).unwrap();
        assert!((s2.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_detects_infeasible_child_via_fallback() {
        // parent optimal, then bounds tightened into infeasibility
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 10.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 5.0);
        m.set_objective(LinExpr::var(x));
        let sf = StandardForm::from_model(&m).unwrap();
        let parent = solve_standard(&sf, &opts()).unwrap();
        let mut child = m.clone();
        child.vars[0].upper = 3.0; // x >= 5 impossible now
        let csf = StandardForm::from_model(&child).unwrap();
        assert_eq!(
            solve_standard_warm(&csf, &opts(), Some(&parent.basis)).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn warm_start_disabled_by_option() {
        let m = knapsack_lp();
        let no_warm = SolveOptions {
            warm_start: false,
            ..opts()
        };
        let (sol, point) = solve_lp_relaxation_warm(&m, &no_warm, None).unwrap();
        assert!(!point.warm);
        assert!(sol.proven_optimal);
    }
}
