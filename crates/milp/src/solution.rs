//! Solver results.

use crate::expr::Var;
use crate::stats::SolveStats;

/// Result of an LP or MILP solve, in model-variable space.
#[derive(Debug, Clone)]
pub struct Solution {
    /// One value per model variable, in creation order.
    pub values: Vec<f64>,
    /// Objective value in the model's own sense (constant included).
    pub objective: f64,
    /// Total simplex iterations across all LP solves.
    pub iterations: usize,
    /// Branch-and-bound nodes explored (0 for a pure LP solve).
    pub nodes: usize,
    /// True when optimality was proven (vs. stopping on a gap/limit).
    pub proven_optimal: bool,
    /// Solver telemetry: prune counters, pivot counts, incumbent timeline
    /// and per-phase wall times. See [`SolveStats`].
    pub stats: SolveStats,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.index()]
    }

    /// Value of an integer variable rounded to the nearest integer.
    pub fn int_value(&self, v: Var) -> i64 {
        self.values[v.index()].round() as i64
    }

    /// True if the variable is (numerically) 1.
    pub fn is_one(&self, v: Var) -> bool {
        (self.values[v.index()] - 1.0).abs() < 1e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solution {
            values: vec![0.9999999, 2.0000001, 0.0],
            objective: 3.0,
            iterations: 10,
            nodes: 2,
            proven_optimal: true,
            stats: SolveStats::default(),
        };
        assert!(s.is_one(Var(0)));
        assert_eq!(s.int_value(Var(1)), 2);
        assert!(!s.is_one(Var(2)));
        assert_eq!(s.value(Var(2)), 0.0);
    }
}
