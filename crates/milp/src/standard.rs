//! Conversion of a [`Model`] to computational standard form.
//!
//! Standard form used by the simplex solver:
//!
//! ```text
//!   minimize  c' x
//!   s.t.      A x = b          (one slack column per original row)
//!             l <= x <= u      (every column has a FINITE lower bound)
//! ```
//!
//! `>=` rows are negated into `<=` rows; `<=` rows get a slack in `[0, ∞)`
//! and `=` rows a fixed slack in `[0, 0]`. Variables with an infinite lower
//! bound are negated (if the upper bound is finite) or split into a
//! difference of two non-negative columns, so the finite-lower-bound
//! invariant always holds.

use crate::error::SolveError;
use crate::expr::LinExpr;
use crate::model::{Cmp, Model, Sense, VarKind};

/// Compressed-sparse-column matrix — the native storage of the
/// constraint matrix.
///
/// Columns are contiguous runs of `(row, value)` pairs; rows inside a
/// column are strictly increasing and explicit zeros are dropped at build
/// time. The revised simplex engine consumes columns directly (pricing
/// dot products, FTRAN right-hand sides); the dense tableau engine and the
/// tests expand via [`Csc::to_dense`].
#[derive(Debug, Clone)]
pub struct Csc {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Start offset of each column in `row_idx`/`values`; `ncols + 1`
    /// entries, last = total nonzero count.
    pub col_ptr: Vec<usize>,
    /// Row index per nonzero, ascending within each column.
    pub row_idx: Vec<usize>,
    /// Value per nonzero.
    pub values: Vec<f64>,
}

impl Csc {
    /// Builds a CSC matrix from unordered `(row, col, value)` triplets.
    /// Duplicate coordinates are summed (matching `+=` assembly) and
    /// resulting zeros are dropped.
    pub fn from_triplets(nrows: usize, ncols: usize, mut t: Vec<(usize, usize, f64)>) -> Self {
        t.sort_unstable_by_key(|a| (a.1, a.0));
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(t.len());
        let mut values = Vec::with_capacity(t.len());
        let mut i = 0;
        while i < t.len() {
            let (r, c, mut v) = t[i];
            debug_assert!(r < nrows && c < ncols);
            i += 1;
            while i < t.len() && t[i].0 == r && t[i].1 == c {
                v += t[i].2;
                i += 1;
            }
            if v != 0.0 {
                col_ptr[c + 1] += 1;
                row_idx.push(r);
                values.push(v);
            }
        }
        for c in 0..ncols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Csc {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Iterates the `(row, value)` pairs of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Nonzero count of column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Element accessor (binary search within the column) — test helper;
    /// hot paths iterate [`Csc::col`] instead.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        match self.row_idx[range.clone()].binary_search(&r) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Expands to a dense row-major matrix — for tests and the dense
    /// oracle engine only.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for (r, v) in self.col(j) {
                *d.at_mut(r, j) = v;
            }
        }
        d
    }
}

/// Dense row-major matrix — working storage of the dense tableau engine
/// (the differential oracle); the constraint matrix itself is [`Csc`].
#[derive(Debug, Clone)]
pub struct Dense {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row-major storage, `nrows * ncols` entries.
    pub data: Vec<f64>,
}

impl Dense {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.ncols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.ncols + c]
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }
}

/// How a model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColMap {
    /// `x = col`.
    Direct(usize),
    /// `x = -col` (variable had `lower = -inf`, finite upper).
    Negated(usize),
    /// `x = pos - neg` (free variable).
    Split {
        /// Column for the positive part.
        pos: usize,
        /// Column for the negative part.
        neg: usize,
    },
}

/// A model lowered to standard form, with the bookkeeping needed to map a
/// standard-form point back to model-variable space.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Constraint matrix including slack columns, in compressed sparse
    /// column form. The paper's time-indexed instances are >99 % zeros,
    /// so every solver-side traversal is per-column and sparse.
    pub a: Csc,
    /// Right-hand sides.
    pub b: Vec<f64>,
    /// Objective (always MINIMIZE internally; negated for max models).
    pub c: Vec<f64>,
    /// Per-column lower bounds (all finite).
    pub lower: Vec<f64>,
    /// Per-column upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    /// Map from model variable index to column(s).
    pub var_map: Vec<ColMap>,
    /// Number of structural (non-slack) columns.
    pub n_struct: usize,
    /// Objective constant in the ORIGINAL model sense.
    pub obj_constant: f64,
    /// True when the model maximizes (objective was negated).
    pub maximize: bool,
}

impl StandardForm {
    /// Lowers `model` into standard form. Fails on malformed models and on
    /// integer variables with a doubly-infinite domain (branch & bound
    /// could not terminate on those).
    pub fn from_model(model: &Model) -> Result<Self, SolveError> {
        model.validate()?;
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut var_map = Vec::with_capacity(model.vars.len());
        for v in &model.vars {
            if v.lower.is_finite() {
                var_map.push(ColMap::Direct(lower.len()));
                lower.push(v.lower);
                upper.push(v.upper);
            } else if v.upper.is_finite() {
                // x in (-inf, u]  =>  y = -x in [-u, inf)
                var_map.push(ColMap::Negated(lower.len()));
                lower.push(-v.upper);
                upper.push(f64::INFINITY);
            } else {
                if v.kind == VarKind::Integer {
                    return Err(SolveError::BadModel(format!(
                        "integer var {} has doubly-infinite bounds",
                        v.name
                    )));
                }
                var_map.push(ColMap::Split {
                    pos: lower.len(),
                    neg: lower.len() + 1,
                });
                lower.extend([0.0, 0.0]);
                upper.extend([f64::INFINITY, f64::INFINITY]);
            }
        }
        let n_struct = lower.len();
        let m = model.cons.len();
        let n = n_struct + m; // one slack per row
        let nnz_hint: usize = model.cons.iter().map(|c| c.expr.terms.len() + 1).sum();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(nnz_hint);
        let mut b = vec![0.0; m];
        for (r, con) in model.cons.iter().enumerate() {
            let sign = if con.cmp == Cmp::Ge { -1.0 } else { 1.0 };
            for &(v, coef) in &con.expr.terms {
                let coef = coef * sign;
                match var_map[v.0] {
                    ColMap::Direct(c) => triplets.push((r, c, coef)),
                    ColMap::Negated(c) => triplets.push((r, c, -coef)),
                    ColMap::Split { pos, neg } => {
                        triplets.push((r, pos, coef));
                        triplets.push((r, neg, -coef));
                    }
                }
            }
            b[r] = con.rhs * sign;
            // slack column
            triplets.push((r, n_struct + r, 1.0));
            match con.cmp {
                Cmp::Le | Cmp::Ge => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Cmp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        // objective
        let maximize = model.sense == Sense::Maximize;
        let osign = if maximize { -1.0 } else { 1.0 };
        let mut c = vec![0.0; n];
        let compact = model.objective.compact();
        for &(v, coef) in &compact.terms {
            let coef = coef * osign;
            match var_map[v.0] {
                ColMap::Direct(cc) => c[cc] += coef,
                ColMap::Negated(cc) => c[cc] -= coef,
                ColMap::Split { pos, neg } => {
                    c[pos] += coef;
                    c[neg] -= coef;
                }
            }
        }
        Ok(StandardForm {
            a: Csc::from_triplets(m, n, triplets),
            b,
            c,
            lower,
            upper,
            var_map,
            n_struct,
            obj_constant: compact.constant,
            maximize,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.a.nrows
    }

    /// Number of columns (structural + slack).
    pub fn ncols(&self) -> usize {
        self.a.ncols
    }

    /// Maps a standard-form point back to model-variable values.
    pub fn extract(&self, x: &[f64]) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|m| match *m {
                ColMap::Direct(c) => x[c],
                ColMap::Negated(c) => -x[c],
                ColMap::Split { pos, neg } => x[pos] - x[neg],
            })
            .collect()
    }

    /// Objective value of a standard-form point, in the ORIGINAL sense,
    /// including the objective constant.
    pub fn model_objective(&self, x: &[f64]) -> f64 {
        let internal: f64 = self.c.iter().zip(x).map(|(c, x)| c * x).sum();
        let sign = if self.maximize { -1.0 } else { 1.0 };
        sign * internal + self.obj_constant
    }
}

/// Builds the `LinExpr` objective evaluated against model variables — test
/// helper exported for integration tests.
pub fn eval_objective(model: &Model, assignment: &[f64]) -> f64 {
    LinExpr::eval(&model.objective, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn slack_kinds_per_cmp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 10.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 4.0);
        m.add_con(LinExpr::var(x), Cmp::Eq, 4.0);
        m.add_con(LinExpr::var(x), Cmp::Ge, 1.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.nrows(), 3);
        assert_eq!(sf.ncols(), 4);
        // Le slack: [0, inf)
        assert_eq!(sf.lower[1], 0.0);
        assert!(sf.upper[1].is_infinite());
        // Eq slack: fixed
        assert_eq!((sf.lower[2], sf.upper[2]), (0.0, 0.0));
        // Ge row negated: coefficient -1, rhs -1
        assert_eq!(sf.a.at(2, 0), -1.0);
        assert_eq!(sf.b[2], -1.0);
    }

    #[test]
    fn maximize_negates_objective() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        m.set_objective(LinExpr::var(x).plus(5.0));
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.c[0], -1.0);
        assert_eq!(sf.obj_constant, 5.0);
        assert_eq!(sf.model_objective(&[1.0, /*no slack rows*/]), 6.0);
    }

    #[test]
    fn negated_and_split_variables_round_trip() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.num_var("a", f64::NEG_INFINITY, 3.0);
        let b = m.num_var("b", f64::NEG_INFINITY, f64::INFINITY);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.var_map[a.index()], ColMap::Negated(0));
        assert!(matches!(sf.var_map[b.index()], ColMap::Split { .. }));
        // standard point: col0 = -2 (=> a = 2), pos=5, neg=1 (=> b = 4)
        let x = vec![-2.0, 5.0, 1.0];
        let back = sf.extract(&x);
        assert_eq!(back, vec![2.0, 4.0]);
        // all lower bounds finite
        assert!(sf.lower.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn free_integer_rejected() {
        let mut m = Model::new(Sense::Minimize);
        m.int_var("z", f64::NEG_INFINITY, f64::INFINITY);
        assert!(StandardForm::from_model(&m).is_err());
    }

    #[test]
    fn csc_from_triplets_merges_and_sorts() {
        // duplicates sum; zeros (explicit and cancelled) are dropped
        let c = Csc::from_triplets(
            3,
            2,
            vec![
                (2, 0, 1.0),
                (0, 0, 2.0),
                (0, 0, 3.0),
                (1, 1, 4.0),
                (1, 1, -4.0),
                (2, 1, 0.0),
            ],
        );
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.at(0, 0), 5.0);
        assert_eq!(c.at(2, 0), 1.0);
        assert_eq!(c.at(1, 1), 0.0); // cancelled pair dropped
        assert_eq!(c.col_nnz(0), 2);
        assert_eq!(c.col_nnz(1), 0);
        let col0: Vec<_> = c.col(0).collect();
        assert_eq!(col0, vec![(0, 5.0), (2, 1.0)]); // rows ascending
        let d = c.to_dense();
        assert_eq!(d.at(0, 0), 5.0);
        assert_eq!(d.at(1, 1), 0.0);
    }

    #[test]
    fn standard_form_matrix_is_sparse() {
        // 3 rows x (2 structural + 3 slack): nnz = row terms + slacks only
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.add_con(LinExpr::var(x), Cmp::Le, 4.0);
        m.add_con(LinExpr::var(y), Cmp::Le, 4.0);
        m.add_con(LinExpr::new().term(x, 1.0).term(y, 1.0), Cmp::Ge, 1.0);
        let sf = StandardForm::from_model(&m).unwrap();
        assert_eq!(sf.a.nnz(), 7); // 4 structural entries + 3 slacks
        assert_eq!(sf.a.to_dense().data.len(), 3 * 5);
    }

    #[test]
    fn dense_matrix_indexing() {
        let mut d = Dense::zeros(2, 3);
        *d.at_mut(1, 2) = 7.0;
        assert_eq!(d.at(1, 2), 7.0);
        assert_eq!(d.row(1), &[0.0, 0.0, 7.0]);
        d.row_mut(0)[1] = 3.0;
        assert_eq!(d.at(0, 1), 3.0);
    }
}
