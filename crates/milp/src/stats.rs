//! Solver telemetry.
//!
//! Every [`crate::solve`] call fills a [`SolveStats`] with the counters a
//! MILP practitioner looks at first when a solve is slow: how many
//! branch-and-bound nodes were explored vs. pruned, how many simplex pivots
//! the LP solves cost, when each incumbent was found, and where the wall
//! time went. The bench binaries print [`SolveStats::summary`] next to the
//! paper tables so solver regressions show up in the same place as model
//! regressions.

use insitu_types::SearchCertificate;
use std::fmt;
use std::time::Duration;

/// Per-LP-solve counters of the revised simplex engine, carried on
/// [`crate::simplex::LpPoint`] and aggregated into [`SolveStats`].
///
/// All zeros when the dense tableau engine ran (it has no factorization
/// to count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpTelemetry {
    /// Basis refactorizations (LU from scratch).
    pub refactorizations: usize,
    /// Longest eta file observed between refactorizations.
    pub max_eta_len: usize,
    /// Nanoseconds spent in FTRAN solves (`Bw = a_j`, rhs recomputes).
    pub ftran_ns: u64,
    /// Nanoseconds spent in BTRAN solves (pricing duals, dual-simplex rows).
    pub btran_ns: u64,
}

impl LpTelemetry {
    /// Accumulates another solve's counters (peak for the eta length,
    /// sums for the rest).
    pub fn absorb(&mut self, other: &LpTelemetry) {
        self.refactorizations += other.refactorizations;
        self.max_eta_len = self.max_eta_len.max(other.max_eta_len);
        self.ftran_ns += other.ftran_ns;
        self.btran_ns += other.btran_ns;
    }

    /// Exports the LP-engine counters into an [`obs::Registry`] under
    /// `milp.lp.*`.
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.add("milp.lp.refactorizations", self.refactorizations as u64);
        registry.observe("milp.lp.max_eta_len", self.max_eta_len as f64);
        registry.observe("milp.lp.ftran_s", self.ftran_ns as f64 / 1e9);
        registry.observe("milp.lp.btran_s", self.btran_ns as f64 / 1e9);
    }
}

/// One improvement of the incumbent during branch & bound.
#[derive(Debug, Clone, PartialEq)]
pub struct IncumbentEvent {
    /// Objective of the new incumbent, in the model's own sense.
    pub objective: f64,
    /// Number of nodes explored when the incumbent was found (1-based:
    /// the node that produced it is counted).
    pub node: usize,
    /// Wall time since the search phase started.
    pub elapsed: Duration,
}

/// Telemetry of one [`crate::solve`] call.
///
/// Attached to every [`crate::Solution`]; all counters are totals across
/// every worker thread. A pure LP solve leaves the node counters at zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes whose LP relaxation was solved (or re-examined at the top of
    /// a dive). Equal to [`crate::Solution::nodes`].
    pub nodes_explored: usize,
    /// Children discarded because their LP bound could not beat the
    /// incumbent (within `abs_gap`).
    pub nodes_pruned_bound: usize,
    /// Children discarded because their LP relaxation was infeasible.
    pub nodes_pruned_infeasible: usize,
    /// Total simplex pivots + bound flips across every LP solve. Equal to
    /// [`crate::Solution::iterations`].
    pub lp_pivots: usize,
    /// Child LPs warm-started from the parent basis (vs. solved cold with
    /// two phases).
    pub warm_started: usize,
    /// Nodes where strong branching evaluated at least one candidate
    /// ([`crate::BranchRule::Pseudocost`] only).
    pub strong_branch_calls: usize,
    /// Candidate child LPs solved by strong branching. Each is counted in
    /// [`SolveStats::lp_pivots`] too; probes for the chosen candidate are
    /// reused as the real children, so they are never solved twice.
    pub strong_branch_lps: usize,
    /// Nodes whose branching variable was chosen from pseudocost
    /// estimates alone (no strong-branch probe of the chosen variable).
    pub pseudocost_branches: usize,
    /// Whether a caller-supplied hint (via [`crate::solve_with_hint`])
    /// rounded to a feasible point and seeded the incumbent before any
    /// node was explored. `false` when no hint was given, the hint had
    /// the wrong length, or rounding it violated a constraint.
    pub hint_accepted: bool,
    /// Basis refactorizations across every LP solve (revised engine only;
    /// zero when the dense oracle ran).
    pub refactorizations: usize,
    /// Longest eta file observed between refactorizations, across all
    /// LP solves.
    pub max_eta_len: usize,
    /// Total wall time inside FTRAN solves across every LP solve.
    pub ftran_time: Duration,
    /// Total wall time inside BTRAN solves across every LP solve.
    pub btran_time: Duration,
    /// Every incumbent improvement, in the order they were accepted.
    pub incumbent_updates: Vec<IncumbentEvent>,
    /// Wall time spent in presolve (zero when disabled).
    pub presolve_time: Duration,
    /// Wall time spent solving the root LP relaxation.
    pub root_lp_time: Duration,
    /// Wall time spent in the branch-and-bound search loop.
    pub search_time: Duration,
    /// Worker threads used by the search (1 = serial).
    pub threads: usize,
    /// Machine-checkable pruning certificate of the search tree. Only
    /// recorded when [`crate::SolveOptions::certificate`] is set; consumed
    /// by the independent `certify` crate, which shares no solver code.
    pub certificate: Option<SearchCertificate>,
}

impl SolveStats {
    /// Single-line summary for logs and bench output.
    ///
    /// # Examples
    ///
    /// ```
    /// use milp::SolveStats;
    /// let s = SolveStats { nodes_explored: 42, threads: 1, ..Default::default() };
    /// assert!(s.summary().contains("nodes 42"));
    /// ```
    pub fn summary(&self) -> String {
        format!(
            "nodes {} (pruned {} bound / {} infeas), pivots {} ({} warm{}), \
             sb {} nodes ({} lps), pc {} nodes, \
             refactor {} (eta peak {}), ftran {:.1?} + btran {:.1?}, \
             incumbents {}, t {:.1?} presolve + {:.1?} root + {:.1?} search, {} thread{}",
            self.nodes_explored,
            self.nodes_pruned_bound,
            self.nodes_pruned_infeasible,
            self.lp_pivots,
            self.warm_started,
            if self.hint_accepted { ", hint seeded" } else { "" },
            self.strong_branch_calls,
            self.strong_branch_lps,
            self.pseudocost_branches,
            self.refactorizations,
            self.max_eta_len,
            self.ftran_time,
            self.btran_time,
            self.incumbent_updates.len(),
            self.presolve_time,
            self.root_lp_time,
            self.search_time,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }

    /// Exports the solve counters into an [`obs::Registry`] under
    /// `milp.*` — the adapter that lets a solve report through the same
    /// sink as a coupled run or a bench binary.
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.add("milp.nodes_explored", self.nodes_explored as u64);
        registry.add("milp.nodes_pruned_bound", self.nodes_pruned_bound as u64);
        registry.add(
            "milp.nodes_pruned_infeasible",
            self.nodes_pruned_infeasible as u64,
        );
        registry.add("milp.lp_pivots", self.lp_pivots as u64);
        registry.add("milp.warm_started", self.warm_started as u64);
        registry.add("milp.strong_branch_calls", self.strong_branch_calls as u64);
        registry.add("milp.strong_branch_lps", self.strong_branch_lps as u64);
        registry.add("milp.pseudocost_branches", self.pseudocost_branches as u64);
        registry.add("milp.hint_accepted", self.hint_accepted as u64);
        registry.add("milp.lp.refactorizations", self.refactorizations as u64);
        registry.add("milp.incumbents", self.incumbent_updates.len() as u64);
        registry.observe("milp.lp.max_eta_len", self.max_eta_len as f64);
        registry.observe("milp.lp.ftran_s", self.ftran_time.as_secs_f64());
        registry.observe("milp.lp.btran_s", self.btran_time.as_secs_f64());
        registry.observe("milp.presolve_s", self.presolve_time.as_secs_f64());
        registry.observe("milp.root_lp_s", self.root_lp_time.as_secs_f64());
        registry.observe("milp.search_s", self.search_time.as_secs_f64());
        registry.observe("milp.threads", self.threads as f64);
    }

    /// Multi-line report including the incumbent timeline.
    pub fn report(&self) -> String {
        let mut out = self.summary();
        for e in &self.incumbent_updates {
            out.push_str(&format!(
                "\n  incumbent {:>14.6} at node {:>6} (+{:.2?})",
                e.objective, e.node, e.elapsed
            ));
        }
        out
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_all_counters() {
        let s = SolveStats {
            nodes_explored: 7,
            nodes_pruned_bound: 3,
            nodes_pruned_infeasible: 2,
            lp_pivots: 99,
            warm_started: 4,
            strong_branch_calls: 5,
            strong_branch_lps: 12,
            pseudocost_branches: 6,
            hint_accepted: true,
            refactorizations: 11,
            max_eta_len: 8,
            threads: 2,
            incumbent_updates: vec![IncumbentEvent {
                objective: 1.5,
                node: 1,
                elapsed: Duration::from_millis(1),
            }],
            ..Default::default()
        };
        let line = s.summary();
        for needle in [
            "nodes 7",
            "3 bound",
            "2 infeas",
            "pivots 99",
            "4 warm",
            "sb 5 nodes (12 lps)",
            "pc 6 nodes",
            "hint seeded",
            "refactor 11",
            "eta peak 8",
            "ftran",
            "btran",
            "2 threads",
        ] {
            assert!(line.contains(needle), "missing {needle}: {line}");
        }
        assert!(s.report().contains("at node"));
        assert_eq!(format!("{s}"), line);
    }

    #[test]
    fn telemetry_absorb_sums_and_peaks() {
        let mut a = LpTelemetry {
            refactorizations: 2,
            max_eta_len: 5,
            ftran_ns: 100,
            btran_ns: 50,
        };
        a.absorb(&LpTelemetry {
            refactorizations: 3,
            max_eta_len: 4,
            ftran_ns: 10,
            btran_ns: 20,
        });
        assert_eq!(a.refactorizations, 5);
        assert_eq!(a.max_eta_len, 5);
        assert_eq!((a.ftran_ns, a.btran_ns), (110, 70));
    }

    #[test]
    fn export_into_reports_through_one_sink() {
        let s = SolveStats {
            nodes_explored: 7,
            lp_pivots: 99,
            strong_branch_lps: 12,
            threads: 2,
            search_time: Duration::from_millis(10),
            ..Default::default()
        };
        let reg = obs::Registry::new();
        s.export_into(&reg);
        let lp = LpTelemetry {
            refactorizations: 3,
            max_eta_len: 4,
            ftran_ns: 1_000_000,
            btran_ns: 500_000,
        };
        lp.export_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("milp.nodes_explored"), Some(7));
        assert_eq!(snap.counter("milp.lp_pivots"), Some(99));
        assert_eq!(snap.counter("milp.strong_branch_lps"), Some(12));
        assert_eq!(snap.counter("milp.lp.refactorizations"), Some(3));
        let search = snap.meter("milp.search_s").unwrap();
        assert!((search.sum - 0.01).abs() < 1e-9);
        assert_eq!(snap.meter("milp.lp.ftran_s").unwrap().count, 2);
    }

    #[test]
    fn default_is_empty() {
        let s = SolveStats::default();
        assert_eq!(s.nodes_explored, 0);
        assert!(s.incumbent_updates.is_empty());
    }
}
