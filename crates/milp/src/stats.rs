//! Solver telemetry.
//!
//! Every [`crate::solve`] call fills a [`SolveStats`] with the counters a
//! MILP practitioner looks at first when a solve is slow: how many
//! branch-and-bound nodes were explored vs. pruned, how many simplex pivots
//! the LP solves cost, when each incumbent was found, and where the wall
//! time went. The bench binaries print [`SolveStats::summary`] next to the
//! paper tables so solver regressions show up in the same place as model
//! regressions.

use insitu_types::SearchCertificate;
use std::fmt;
use std::time::Duration;

/// One improvement of the incumbent during branch & bound.
#[derive(Debug, Clone, PartialEq)]
pub struct IncumbentEvent {
    /// Objective of the new incumbent, in the model's own sense.
    pub objective: f64,
    /// Number of nodes explored when the incumbent was found (1-based:
    /// the node that produced it is counted).
    pub node: usize,
    /// Wall time since the search phase started.
    pub elapsed: Duration,
}

/// Telemetry of one [`crate::solve`] call.
///
/// Attached to every [`crate::Solution`]; all counters are totals across
/// every worker thread. A pure LP solve leaves the node counters at zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes whose LP relaxation was solved (or re-examined at the top of
    /// a dive). Equal to [`crate::Solution::nodes`].
    pub nodes_explored: usize,
    /// Children discarded because their LP bound could not beat the
    /// incumbent (within `abs_gap`).
    pub nodes_pruned_bound: usize,
    /// Children discarded because their LP relaxation was infeasible.
    pub nodes_pruned_infeasible: usize,
    /// Total simplex pivots + bound flips across every LP solve. Equal to
    /// [`crate::Solution::iterations`].
    pub lp_pivots: usize,
    /// Child LPs warm-started from the parent basis (vs. solved cold with
    /// two phases).
    pub warm_started: usize,
    /// Every incumbent improvement, in the order they were accepted.
    pub incumbent_updates: Vec<IncumbentEvent>,
    /// Wall time spent in presolve (zero when disabled).
    pub presolve_time: Duration,
    /// Wall time spent solving the root LP relaxation.
    pub root_lp_time: Duration,
    /// Wall time spent in the branch-and-bound search loop.
    pub search_time: Duration,
    /// Worker threads used by the search (1 = serial).
    pub threads: usize,
    /// Machine-checkable pruning certificate of the search tree. Only
    /// recorded when [`crate::SolveOptions::certificate`] is set; consumed
    /// by the independent `certify` crate, which shares no solver code.
    pub certificate: Option<SearchCertificate>,
}

impl SolveStats {
    /// Single-line summary for logs and bench output.
    ///
    /// # Examples
    ///
    /// ```
    /// use milp::SolveStats;
    /// let s = SolveStats { nodes_explored: 42, threads: 1, ..Default::default() };
    /// assert!(s.summary().contains("nodes 42"));
    /// ```
    pub fn summary(&self) -> String {
        format!(
            "nodes {} (pruned {} bound / {} infeas), pivots {} ({} warm), \
             incumbents {}, t {:.1?} presolve + {:.1?} root + {:.1?} search, {} thread{}",
            self.nodes_explored,
            self.nodes_pruned_bound,
            self.nodes_pruned_infeasible,
            self.lp_pivots,
            self.warm_started,
            self.incumbent_updates.len(),
            self.presolve_time,
            self.root_lp_time,
            self.search_time,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }

    /// Multi-line report including the incumbent timeline.
    pub fn report(&self) -> String {
        let mut out = self.summary();
        for e in &self.incumbent_updates {
            out.push_str(&format!(
                "\n  incumbent {:>14.6} at node {:>6} (+{:.2?})",
                e.objective, e.node, e.elapsed
            ));
        }
        out
    }
}

impl fmt::Display for SolveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_all_counters() {
        let s = SolveStats {
            nodes_explored: 7,
            nodes_pruned_bound: 3,
            nodes_pruned_infeasible: 2,
            lp_pivots: 99,
            warm_started: 4,
            threads: 2,
            incumbent_updates: vec![IncumbentEvent {
                objective: 1.5,
                node: 1,
                elapsed: Duration::from_millis(1),
            }],
            ..Default::default()
        };
        let line = s.summary();
        for needle in ["nodes 7", "3 bound", "2 infeas", "pivots 99", "4 warm", "2 threads"] {
            assert!(line.contains(needle), "missing {needle}: {line}");
        }
        assert!(s.report().contains("at node"));
        assert_eq!(format!("{s}"), line);
    }

    #[test]
    fn default_is_empty() {
        let s = SolveStats::default();
        assert_eq!(s.nodes_explored, 0);
        assert!(s.incumbent_updates.is_empty());
    }
}
