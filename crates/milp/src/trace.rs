//! Search-tree traces: the solver's deep telemetry, derived from the
//! pruning certificate.
//!
//! A [`SearchTrace`] is a bounded, deterministically-sampled view of the
//! branch-and-cut tree: node id, parent, depth, LP bound and fathoming
//! action for a sample of nodes, plus the whole-solve summary (objective,
//! dual bound, total node and cut counts). It is built **offline** from
//! the [`SearchCertificate`] the search already records when
//! [`crate::SolveOptions::certificate`] is on — the hot path pays
//! nothing beyond the certificate it was already paying for, and the
//! trace inherits the certificate's determinism (serial solves produce
//! identical certificates, so identical traces).
//!
//! Sampling is deterministic: nodes sort by `(depth, id)` and the first
//! `cap` survive. Because a parent is always strictly shallower than its
//! children, any sampled node's entire ancestor chain is sampled too —
//! the rendered tree never has orphans.
//!
//! Three renderers:
//! * [`SearchTrace::to_text_tree`] — box-drawing tree for terminals (the
//!   `trace_view` CLI's default output),
//! * [`SearchTrace::to_json_string`] — the `milp/searchtrace/v1` schema
//!   (round-trips through [`SearchTrace::from_json`]),
//! * [`SearchTrace::to_chrome_trace_string`] — a synthetic flame graph:
//!   one complete event per sampled node, positioned by preorder index
//!   with duration equal to its sampled-subtree size, so
//!   `chrome://tracing` / Perfetto show the tree as nested frames.
//!
//! This is what makes the cut-ablation node reductions *inspectable*:
//! `trace_view` renders where the tree was closed, not just how big it
//! was. See `docs/SOLVER.md` and `docs/OBSERVABILITY.md`.

use insitu_types::cert::{NodeOutcome, SearchCertificate};
use insitu_types::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier written by [`SearchTrace::to_json_string`].
pub const SEARCHTRACE_SCHEMA: &str = "milp/searchtrace/v1";

/// One sampled search node.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Node id (the search's creation sequence number).
    pub id: u64,
    /// Parent node id; `None` for the root.
    pub parent: Option<u64>,
    /// Distance from the root.
    pub depth: u32,
    /// The node's LP relaxation bound.
    pub lp_bound: f64,
    /// Fathoming action: `"branched"`, `"integral"`, `"pruned-bound"`,
    /// or `"pruned-infeasible"`.
    pub action: &'static str,
    /// The integral objective, when `action == "integral"`.
    pub objective: Option<f64>,
}

/// A bounded, deterministically-sampled search tree. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchTrace {
    /// Proven-optimal objective of the solve.
    pub objective: f64,
    /// Root dual bound the tree was closed against.
    pub dual_bound: f64,
    /// Optimization sense.
    pub maximize: bool,
    /// Nodes in the full certificate (before sampling).
    pub total_nodes: usize,
    /// Cut proofs carried by the certificate.
    pub total_cuts: usize,
    /// The sample cap this trace was built with.
    pub cap: usize,
    /// Sampled nodes, sorted by `(depth, id)`; ancestor-closed.
    pub nodes: Vec<TraceNode>,
}

fn action_of(outcome: &NodeOutcome) -> (&'static str, Option<f64>) {
    match outcome {
        NodeOutcome::Branched => ("branched", None),
        NodeOutcome::Integral { objective } => ("integral", Some(*objective)),
        NodeOutcome::PrunedBound => ("pruned-bound", None),
        NodeOutcome::PrunedInfeasible => ("pruned-infeasible", None),
    }
}

fn action_from_str(s: &str) -> Option<&'static str> {
    match s {
        "branched" => Some("branched"),
        "integral" => Some("integral"),
        "pruned-bound" => Some("pruned-bound"),
        "pruned-infeasible" => Some("pruned-infeasible"),
        _ => None,
    }
}

impl SearchTrace {
    /// Builds the trace from a certificate, keeping at most `cap`
    /// sampled nodes (`cap` is clamped to at least 1 when the
    /// certificate has any node). Deterministic: same certificate + cap
    /// → identical trace.
    pub fn from_certificate(cert: &SearchCertificate, cap: usize) -> SearchTrace {
        let parent_of: BTreeMap<u64, Option<u64>> =
            cert.nodes.iter().map(|n| (n.id, n.parent)).collect();
        let mut depth_memo: BTreeMap<u64, u32> = BTreeMap::new();
        fn depth(id: u64, parent_of: &BTreeMap<u64, Option<u64>>, memo: &mut BTreeMap<u64, u32>) -> u32 {
            if let Some(&d) = memo.get(&id) {
                return d;
            }
            let d = match parent_of.get(&id).copied().flatten() {
                // a parent missing from the certificate is treated as a
                // root (defensive; complete certificates never hit this)
                Some(p) if parent_of.contains_key(&p) => 1 + depth(p, parent_of, memo),
                _ => 0,
            };
            memo.insert(id, d);
            d
        }
        let mut nodes: Vec<TraceNode> = cert
            .nodes
            .iter()
            .map(|n| {
                let (action, objective) = action_of(&n.outcome);
                TraceNode {
                    id: n.id,
                    parent: n.parent,
                    depth: depth(n.id, &parent_of, &mut depth_memo),
                    lp_bound: n.lp_bound,
                    action,
                    objective,
                }
            })
            .collect();
        nodes.sort_by_key(|n| (n.depth, n.id));
        let cap = cap.max(usize::from(!nodes.is_empty()));
        nodes.truncate(cap);
        SearchTrace {
            objective: cert.objective,
            dual_bound: cert.dual_bound,
            maximize: cert.maximize,
            total_nodes: cert.nodes.len(),
            total_cuts: cert.cuts.len(),
            cap,
            nodes,
        }
    }

    /// Direct children of `id` *within the sample*, ascending by id.
    fn sampled_children(&self, id: u64) -> Vec<&TraceNode> {
        let mut kids: Vec<&TraceNode> =
            self.nodes.iter().filter(|n| n.parent == Some(id)).collect();
        kids.sort_by_key(|n| n.id);
        kids
    }

    fn sampled_roots(&self) -> Vec<&TraceNode> {
        let mut roots: Vec<&TraceNode> =
            self.nodes.iter().filter(|n| n.parent.is_none()).collect();
        roots.sort_by_key(|n| n.id);
        roots
    }

    /// Renders the sampled tree with box-drawing characters, one node
    /// per line, preceded by a summary header.
    pub fn to_text_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{SEARCHTRACE_SCHEMA}: {} nodes ({} sampled, cap {}), {} cuts, objective {} ({}), dual bound {}",
            self.total_nodes,
            self.nodes.len(),
            self.cap,
            self.total_cuts,
            self.objective,
            if self.maximize { "maximize" } else { "minimize" },
            self.dual_bound,
        );
        fn node_line(out: &mut String, n: &TraceNode) {
            let _ = write!(out, "#{} bound={} {}", n.id, n.lp_bound, n.action);
            if let Some(obj) = n.objective {
                let _ = write!(out, " obj={obj}");
            }
            out.push('\n');
        }
        fn render(out: &mut String, trace: &SearchTrace, n: &TraceNode, prefix: &str) {
            let kids = trace.sampled_children(n.id);
            for (i, kid) in kids.iter().enumerate() {
                let last = i + 1 == kids.len();
                out.push_str(prefix);
                out.push_str(if last { "└─ " } else { "├─ " });
                node_line(out, kid);
                let deeper = format!("{prefix}{}", if last { "   " } else { "│  " });
                render(out, trace, kid, &deeper);
            }
        }
        for root in self.sampled_roots() {
            node_line(&mut out, root);
            render(&mut out, self, root, "");
        }
        if self.nodes.len() < self.total_nodes {
            let _ = writeln!(
                out,
                "… {} deeper nodes not sampled (raise the cap to see them)",
                self.total_nodes - self.nodes.len()
            );
        }
        out
    }

    /// Exports the `milp/searchtrace/v1` JSON document.
    pub fn to_json_string(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("schema".into(), Value::String(SEARCHTRACE_SCHEMA.into()));
        obj.insert("objective".into(), Value::Number(self.objective));
        obj.insert("dual_bound".into(), Value::Number(self.dual_bound));
        obj.insert("maximize".into(), Value::Bool(self.maximize));
        obj.insert("total_nodes".into(), Value::Number(self.total_nodes as f64));
        obj.insert("total_cuts".into(), Value::Number(self.total_cuts as f64));
        obj.insert("cap".into(), Value::Number(self.cap as f64));
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut m = BTreeMap::new();
                m.insert("id".into(), Value::Number(n.id as f64));
                m.insert(
                    "parent".into(),
                    match n.parent {
                        Some(p) => Value::Number(p as f64),
                        None => Value::Null,
                    },
                );
                m.insert("depth".into(), Value::Number(n.depth as f64));
                m.insert("lp_bound".into(), Value::Number(n.lp_bound));
                m.insert("action".into(), Value::String(n.action.into()));
                m.insert(
                    "objective".into(),
                    match n.objective {
                        Some(o) => Value::Number(o),
                        None => Value::Null,
                    },
                );
                Value::Object(m)
            })
            .collect();
        obj.insert("nodes".into(), Value::Array(nodes));
        Value::Object(obj).to_string()
    }

    /// Parses a `milp/searchtrace/v1` document (the inverse of
    /// [`SearchTrace::to_json_string`]).
    pub fn from_json(text: &str) -> Result<SearchTrace, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SEARCHTRACE_SCHEMA {
            return Err(format!("expected schema {SEARCHTRACE_SCHEMA}, got `{schema}`"));
        }
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number `{key}`"))
        };
        let nodes = v
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or("missing `nodes` array")?
            .iter()
            .map(|n| -> Result<TraceNode, String> {
                let nnum = |key: &str| -> Result<f64, String> {
                    n.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("node missing number `{key}`"))
                };
                let action_str = n
                    .get("action")
                    .and_then(Value::as_str)
                    .ok_or("node missing `action`")?;
                Ok(TraceNode {
                    id: nnum("id")? as u64,
                    parent: n.get("parent").and_then(Value::as_f64).map(|p| p as u64),
                    depth: nnum("depth")? as u32,
                    lp_bound: nnum("lp_bound")?,
                    action: action_from_str(action_str)
                        .ok_or_else(|| format!("unknown action `{action_str}`"))?,
                    objective: n.get("objective").and_then(Value::as_f64),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SearchTrace {
            objective: num("objective")?,
            dual_bound: num("dual_bound")?,
            maximize: v
                .get("maximize")
                .and_then(Value::as_bool)
                .ok_or("missing `maximize`")?,
            total_nodes: num("total_nodes")? as usize,
            total_cuts: num("total_cuts")? as usize,
            cap: num("cap")? as usize,
            nodes,
        })
    }

    /// Exports a Chrome trace-event array visualizing the sampled tree
    /// as nested frames: each node is a complete event at its preorder
    /// index with duration equal to its sampled-subtree size, so a
    /// parent frame exactly spans its children. Time here is tree
    /// position, not wall clock.
    pub fn to_chrome_trace_string(&self) -> String {
        // preorder positions and subtree sizes over the sampled tree
        fn layout(
            trace: &SearchTrace,
            n: &TraceNode,
            next: &mut u64,
            out: &mut Vec<(u64, u64, u64)>, // (id, start, size)
        ) -> u64 {
            let start = *next;
            *next += 1;
            let mut size = 1;
            for kid in trace.sampled_children(n.id) {
                size += layout(trace, kid, next, out);
            }
            out.push((n.id, start, size));
            size
        }
        let mut frames = Vec::with_capacity(self.nodes.len());
        let mut next = 0u64;
        for root in self.sampled_roots() {
            layout(self, root, &mut next, &mut frames);
        }
        frames.sort_by_key(|&(id, _, _)| id);
        let by_id: BTreeMap<u64, (u64, u64)> = frames
            .into_iter()
            .map(|(id, start, size)| (id, (start, size)))
            .collect();
        let mut out = String::with_capacity(128 + 128 * self.nodes.len());
        out.push('[');
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":\"search tree ({} nodes, {} sampled)\"}}}}",
            self.total_nodes,
            self.nodes.len()
        );
        for n in &self.nodes {
            let (start, size) = by_id[&n.id];
            let _ = write!(
                out,
                ",{{\"name\":\"#{} {}\",\"cat\":\"milp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"id\":{},\"depth\":{},\"lp_bound\":{},\"action\":\"{}\"",
                n.id, n.action, start, size, n.id, n.depth, n.lp_bound, n.action
            );
            if let Some(obj) = n.objective {
                let _ = write!(out, ",\"objective\":{obj}");
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Cmp, Model, Sense};
    use crate::options::{CutPolicy, SolveOptions};

    fn certified_solve() -> SearchCertificate {
        // a knapsack awkward enough to force real branching
        let mut m = Model::new(Sense::Maximize);
        let w = [5.0, 7.0, 4.0, 3.0, 6.0, 5.0, 8.0];
        let v = [8.0, 11.0, 6.0, 4.0, 9.0, 7.0, 13.0];
        let mut cap_row = LinExpr::new();
        let mut obj = LinExpr::new();
        for i in 0..w.len() {
            let x = m.binary("x");
            cap_row = cap_row.term(x, w[i]);
            obj = obj.term(x, v[i]);
        }
        m.add_con(cap_row, Cmp::Le, 17.0);
        m.set_objective(obj);
        let opts = SolveOptions {
            certificate: true,
            cut_policy: CutPolicy::Off,
            rounding_heuristic: false,
            ..SolveOptions::default()
        };
        crate::solve(&m, &opts).unwrap().stats.certificate.unwrap()
    }

    #[test]
    fn trace_is_deterministic_and_ancestor_closed() {
        let cert = certified_solve();
        assert!(cert.nodes.len() > 3, "want a real tree, got {}", cert.nodes.len());
        let a = SearchTrace::from_certificate(&cert, 4);
        let b = SearchTrace::from_certificate(&cert, 4);
        assert_eq!(a, b);
        assert_eq!(a.nodes.len(), 4.min(cert.nodes.len()));
        assert_eq!(a.total_nodes, cert.nodes.len());
        // every sampled non-root's parent is sampled
        let ids: std::collections::BTreeSet<u64> = a.nodes.iter().map(|n| n.id).collect();
        for n in &a.nodes {
            if let Some(p) = n.parent {
                assert!(ids.contains(&p), "node {} orphaned (parent {p})", n.id);
            }
        }
        // sample prefers shallow nodes
        let max_sampled = a.nodes.iter().map(|n| n.depth).max().unwrap();
        let unsampled_min = SearchTrace::from_certificate(&cert, usize::MAX)
            .nodes
            .iter()
            .filter(|n| !ids.contains(&n.id))
            .map(|n| n.depth)
            .min();
        if let Some(d) = unsampled_min {
            assert!(max_sampled <= d);
        }
    }

    #[test]
    fn json_round_trips() {
        let cert = certified_solve();
        let t = SearchTrace::from_certificate(&cert, 16);
        let json = t.to_json_string();
        assert!(json.contains("\"schema\":\"milp/searchtrace/v1\""));
        let back = SearchTrace::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert!(SearchTrace::from_json("{\"schema\":\"nope\"}").is_err());
    }

    #[test]
    fn text_tree_renders_every_sampled_node_once() {
        let cert = certified_solve();
        let t = SearchTrace::from_certificate(&cert, 8);
        let text = t.to_text_tree();
        for n in &t.nodes {
            assert_eq!(
                text.matches(&format!("#{} bound=", n.id)).count(),
                1,
                "{text}"
            );
        }
        if t.nodes.len() < t.total_nodes {
            assert!(text.contains("not sampled"), "{text}");
        }
    }

    #[test]
    fn chrome_export_nests_children_inside_parents() {
        let cert = certified_solve();
        let t = SearchTrace::from_certificate(&cert, 16);
        let chrome = t.to_chrome_trace_string();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), t.nodes.len());
        // root frame spans the whole sampled tree
        let root = t.sampled_roots()[0];
        assert!(chrome.contains(&format!(
            "\"name\":\"#{} {}\",\"cat\":\"milp\",\"ph\":\"X\",\"ts\":0,\"dur\":{}",
            root.id,
            root.action,
            t.nodes.len()
        )));
    }
}
