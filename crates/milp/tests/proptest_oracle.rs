//! Property tests: branch & bound must agree with brute-force enumeration
//! on random small pure-integer programs, and LP relaxation bounds must
//! dominate the integer optimum.

use milp::brute::brute_force;
use milp::{
    presolve, solve, solve_lp_relaxation, Cmp, LinExpr, Model, Sense, SolveError, SolveOptions,
};
use proptest::prelude::*;

/// A random small integer program: n vars in [0, ub], m `<=` rows with
/// small integer coefficients, random objective.
fn arb_model() -> impl Strategy<Value = Model> {
    (
        2usize..5,                       // vars
        1usize..4,                       // rows
        prop::collection::vec(-4i32..7, 4 * 3), // row coefficients (flattened)
        prop::collection::vec(-5i32..9, 5),     // objective coefficients
        prop::collection::vec(1i32..4, 4),      // upper bounds
        prop::collection::vec(2i32..25, 3),     // rhs values
        any::<bool>(),                   // sense
    )
        .prop_map(|(n, m, coefs, obj, ubs, rhs, maximize)| {
            let mut model = Model::new(if maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            });
            let vars: Vec<_> = (0..n)
                .map(|i| model.int_var(&format!("x{i}"), 0.0, ubs[i % ubs.len()] as f64))
                .collect();
            for r in 0..m {
                let expr = LinExpr::sum(
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| (v, coefs[(r * n + i) % coefs.len()] as f64)),
                );
                model.add_con(expr, Cmp::Le, rhs[r % rhs.len()] as f64);
            }
            model.set_objective(LinExpr::sum(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, obj[i % obj.len()] as f64)),
            ));
            model
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn branch_and_bound_matches_brute_force(model in arb_model()) {
        let opts = SolveOptions::default();
        let exact = brute_force(&model, 1 << 16);
        let bb = solve(&model, &opts);
        match (exact, bb) {
            (Ok(e), Ok(s)) => {
                prop_assert!((e.objective - s.objective).abs() < 1e-5,
                    "brute {} vs b&b {}", e.objective, s.objective);
                prop_assert!(model.is_feasible(&s.values, 1e-5));
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (e, s) => prop_assert!(false, "status mismatch: brute={e:?} bb={s:?}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_integer_optimum(model in arb_model()) {
        let opts = SolveOptions::default();
        if let (Ok(relax), Ok(ip)) = (solve_lp_relaxation(&model, &opts), solve(&model, &opts)) {
            match model.sense {
                Sense::Maximize => prop_assert!(relax.objective >= ip.objective - 1e-5),
                Sense::Minimize => prop_assert!(relax.objective <= ip.objective + 1e-5),
            }
        }
    }

    #[test]
    fn presolve_dominance_preserves_optimum(
        model in arb_model(),
        slacks in prop::collection::vec(0i32..6, 4),
    ) {
        // duplicate every row with a loosened rhs: each duplicate is
        // dominated by its original (or both are redundant), so presolve
        // must remove at least one per pair and keep the optimum intact
        let mut loose = model.clone();
        let rows: Vec<_> = model
            .cons
            .iter()
            .map(|c| (c.expr.clone(), c.cmp, c.rhs))
            .collect();
        for (i, (expr, cmp, rhs)) in rows.iter().enumerate() {
            loose.add_con(expr.clone(), *cmp, rhs + slacks[i % slacks.len()] as f64);
        }
        let mut pre = loose.clone();
        let presolved = presolve(&mut pre, 1e-9);
        let direct = solve(&loose, &SolveOptions::default());
        match presolved {
            Err(SolveError::Infeasible) => {
                prop_assert!(direct.is_err(), "presolve proved infeasible, direct solved");
            }
            Err(e) => prop_assert!(false, "unexpected presolve failure: {e:?}"),
            Ok(_) => {
                prop_assert!(pre.cons.len() <= model.cons.len(),
                    "every dominated duplicate must be eliminated");
                match (solve(&pre, &SolveOptions::default()), direct) {
                    (Ok(p), Ok(d)) => prop_assert!((p.objective - d.objective).abs() < 1e-6,
                        "presolved {} vs direct {}", p.objective, d.objective),
                    (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
                    (p, d) => prop_assert!(false, "status mismatch: pre={p:?} direct={d:?}"),
                }
            }
        }
    }

    #[test]
    fn solutions_respect_bounds_and_integrality(model in arb_model()) {
        if let Ok(s) = solve(&model, &SolveOptions::default()) {
            for (i, v) in model.vars.iter().enumerate() {
                prop_assert!(s.values[i] >= v.lower - 1e-6);
                prop_assert!(s.values[i] <= v.upper + 1e-6);
                prop_assert!((s.values[i] - s.values[i].round()).abs() < 1e-6);
            }
        }
    }
}
