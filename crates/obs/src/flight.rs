//! The always-on flight recorder: a cheap bounded ring of recent
//! telemetry that can be dumped as a post-mortem artifact.
//!
//! A [`Tracer`](crate::Tracer) drops records once its buffer fills —
//! the right call for a long healthy run, the wrong one for the moments
//! *before* a failure. A [`FlightRecorder`] is the complement: a small
//! ring that always holds the most recent window of spans, events and
//! registry deltas, overwriting the oldest entry instead of dropping
//! the newest. Recording costs one lock and a ring rotation (no
//! allocation growth beyond the constructed capacity), so it stays on
//! in production.
//!
//! [`FlightRecorder::dump`] renders the `flightrec/v1` JSON artifact:
//! the last-N entries, the total ever recorded, the dump reason, the
//! offending instance fingerprint and verdict when known, and a
//! registry snapshot. The solve service dumps automatically on
//! certify-reject, `INVALID` and solver-error paths (see
//! `docs/SERVICE.md`); [`FlightRecorder::dump`] is also the explicit
//! operator hook.
//!
//! Attach a recorder to a [`Tracer`](crate::Tracer) with
//! [`Tracer::attach_flight`](crate::Tracer::attach_flight) (every
//! span/event recorded — **including** ones the bounded tracer buffer
//! dropped — also enters the ring) and to a
//! [`Registry`](crate::Registry) with
//! [`Registry::attach_flight`](crate::Registry::attach_flight)
//! (counter increments enter as deltas).

use crate::json::{push_str_lit, push_u64};
use crate::registry::Snapshot;
use crate::tracer::{EventRecord, SpanRecord};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Schema identifier written by [`FlightRecorder::dump`].
pub const FLIGHTREC_SCHEMA: &str = "flightrec/v1";

/// One ring entry.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightEntry {
    /// A closed span (same record a timeline holds).
    Span(SpanRecord),
    /// An instantaneous event.
    Event(EventRecord),
    /// A registry counter increment: `name += delta`.
    Delta {
        /// Counter name.
        name: String,
        /// Amount added.
        delta: u64,
    },
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<FlightEntry>,
    recorded: u64,
}

/// A bounded, thread-safe ring of recent telemetry. See the
/// [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` entries.
    /// `capacity == 0` disables recording (every record is a no-op).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            cap: capacity,
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity),
                recorded: 0,
            }),
        }
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total entries ever offered (retained or rotated out).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight ring poisoned").recorded
    }

    /// Whether the ring records at all.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    fn push(&self, entry: FlightEntry) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("flight ring poisoned");
        inner.recorded += 1;
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(entry);
    }

    /// Records a closed span.
    pub fn record_span(&self, span: SpanRecord) {
        self.push(FlightEntry::Span(span));
    }

    /// Records an instantaneous event.
    pub fn record_event(&self, event: EventRecord) {
        self.push(FlightEntry::Event(event));
    }

    /// Records a registry counter increment.
    pub fn record_delta(&self, name: &str, delta: u64) {
        self.push(FlightEntry::Delta {
            name: name.to_string(),
            delta,
        });
    }

    /// A copy of the retained entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.inner
            .lock()
            .expect("flight ring poisoned")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the `flightrec/v1` post-mortem artifact.
    ///
    /// `fingerprint` and `verdict` name the offending request when the
    /// dump was triggered by one (certify-reject, `INVALID`, solver
    /// error); `registry` attaches a counter/meter/histogram snapshot.
    /// The document parses with any JSON parser
    /// (`insitu_types::json::Value::parse` in this workspace's tests).
    pub fn dump(
        &self,
        reason: &str,
        fingerprint: Option<&str>,
        verdict: Option<&str>,
        registry: Option<&Snapshot>,
    ) -> String {
        let inner = self.inner.lock().expect("flight ring poisoned");
        let mut out = String::with_capacity(256 + 160 * inner.ring.len());
        out.push_str("{\"schema\":");
        push_str_lit(&mut out, FLIGHTREC_SCHEMA);
        out.push_str(",\"reason\":");
        push_str_lit(&mut out, reason);
        out.push_str(",\"fingerprint\":");
        match fingerprint {
            Some(fp) => push_str_lit(&mut out, fp),
            None => out.push_str("null"),
        }
        out.push_str(",\"verdict\":");
        match verdict {
            Some(v) => push_str_lit(&mut out, v),
            None => out.push_str("null"),
        }
        out.push_str(",\"capacity\":");
        push_u64(&mut out, self.cap as u64);
        out.push_str(",\"recorded\":");
        push_u64(&mut out, inner.recorded);
        out.push_str(",\"entries\":[");
        for (i, e) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match e {
                FlightEntry::Span(s) => {
                    out.push_str("{\"kind\":\"span\",");
                    crate::timeline::push_span_fields(&mut out, s);
                    out.push('}');
                }
                FlightEntry::Event(ev) => {
                    out.push_str("{\"kind\":\"event\",");
                    crate::timeline::push_event_fields(&mut out, ev);
                    out.push('}');
                }
                FlightEntry::Delta { name, delta } => {
                    out.push_str("{\"kind\":\"delta\",\"name\":");
                    push_str_lit(&mut out, name);
                    out.push_str(",\"delta\":");
                    push_u64(&mut out, *delta);
                    out.push('}');
                }
            }
        }
        out.push_str("],\"registry\":");
        match registry {
            Some(snap) => out.push_str(&snap.to_json_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, Tracer};
    use std::sync::Arc;

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..7u64 {
            fr.record_delta("c", i);
        }
        assert_eq!(fr.recorded(), 7);
        let entries = fr.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries,
            vec![
                FlightEntry::Delta { name: "c".into(), delta: 4 },
                FlightEntry::Delta { name: "c".into(), delta: 5 },
                FlightEntry::Delta { name: "c".into(), delta: 6 },
            ]
        );
    }

    #[test]
    fn zero_capacity_is_inert() {
        let fr = FlightRecorder::with_capacity(0);
        assert!(!fr.enabled());
        fr.record_delta("c", 1);
        assert_eq!(fr.recorded(), 0);
        assert!(fr.entries().is_empty());
        let dump = fr.dump("manual", None, None, None);
        assert!(dump.contains("\"entries\":[]"));
    }

    #[test]
    fn tracer_tee_survives_tracer_overload() {
        let fr = Arc::new(FlightRecorder::with_capacity(4));
        let t = Tracer::with_capacity(2);
        t.attach_flight(fr.clone());
        for _ in 0..6 {
            let _g = t.span("s");
        }
        // tracer kept 2 and dropped 4; the flight ring holds the *last* 4
        assert_eq!(t.timeline().spans.len(), 2);
        assert_eq!(t.dropped(), 4);
        assert_eq!(fr.recorded(), 6);
        assert_eq!(fr.entries().len(), 4);
    }

    #[test]
    fn registry_tee_records_deltas() {
        let fr = Arc::new(FlightRecorder::with_capacity(8));
        let reg = Registry::new();
        reg.attach_flight(fr.clone());
        reg.add("service.requests", 1);
        reg.add("service.certify_rejects", 1);
        let entries = fr.entries();
        assert_eq!(entries.len(), 2);
        assert!(matches!(
            &entries[1],
            FlightEntry::Delta { name, delta: 1 } if name == "service.certify_rejects"
        ));
    }

    #[test]
    fn dump_is_schema_tagged_and_carries_context() {
        let fr = FlightRecorder::with_capacity(4);
        fr.record_delta("service.requests", 1);
        let reg = Registry::new();
        reg.add("service.requests", 1);
        let snap = reg.snapshot();
        let dump = fr.dump("certify-reject", Some("deadbeef"), Some("INVALID"), Some(&snap));
        assert!(dump.starts_with("{\"schema\":\"flightrec/v1\""));
        assert!(dump.contains("\"reason\":\"certify-reject\""));
        assert!(dump.contains("\"fingerprint\":\"deadbeef\""));
        assert!(dump.contains("\"verdict\":\"INVALID\""));
        assert!(dump.contains("\"kind\":\"delta\""));
        assert!(dump.contains("\"registry\":{\"counters\""));
    }
}
