//! Deterministic log₂-bucket latency histograms.
//!
//! A [`Hist`] counts observations into buckets of the form
//! `[2^k, 2^(k+1))` — the bucket of a positive value is read straight
//! off its IEEE-754 exponent, so bucketing involves no floating-point
//! arithmetic and is exact at every magnitude. The state is pure
//! integer counts plus the multiset min/max, which makes a snapshot
//! **bitwise deterministic for a given multiset of observations**: the
//! order the observations arrived in, the number of threads that fed
//! them, and how partial histograms were merged are all invisible in
//! the result. [`Hist::merge`] is associative and commutative (it adds
//! counts and takes min/max), so per-thread shards can be folded in any
//! order.
//!
//! Quantile estimates come with a documented error bound: for a rank
//! that lands in bucket `k`, [`Hist::quantile`] returns the bucket's
//! upper edge `2^(k+1)` clamped into `[min, max]`, and every
//! observation in that bucket lies in `[2^k, 2^(k+1))` — so the
//! estimate is never below the true quantile and overshoots it by
//! strictly less than a factor of 2 (before clamping, which only
//! tightens it). Non-positive and non-finite observations are counted
//! in a separate `nonpositive` bin that sorts below every bucket.
//!
//! The JSON export is the `obs/hist/v1` schema documented in
//! `docs/OBSERVABILITY.md`; [`crate::Registry`] stores named `Hist`s
//! next to its counters and meters.

use crate::json::{push_f64, push_i64, push_str_lit, push_u64};
use std::collections::BTreeMap;

/// Schema identifier written by [`Hist::to_json_string`].
pub const HIST_SCHEMA: &str = "obs/hist/v1";

/// Smallest bucket exponent tracked; values below `2^MIN_EXP` clamp
/// into this bucket. `2^-64 ≈ 5.4e-20` — far below a nanosecond in
/// seconds, so latencies never clamp in practice.
pub const MIN_EXP: i32 = -64;
/// Largest bucket exponent tracked; values at or above `2^(MAX_EXP+1)`
/// clamp into this bucket. `2^64 ≈ 1.8e19`.
pub const MAX_EXP: i32 = 63;

/// Bucket exponent of a positive finite value: the unique `k` with
/// `2^k <= v < 2^(k+1)`, clamped to `[MIN_EXP, MAX_EXP]`. `None` for
/// zero, negative, or non-finite values.
fn bucket_exp(v: f64) -> Option<i32> {
    // NaN fails the second test; zero and negatives fail the first
    if v <= 0.0 || !v.is_finite() {
        return None;
    }
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    let exp = if biased == 0 {
        // subnormal: below 2^-1022, clamps to MIN_EXP anyway
        MIN_EXP
    } else {
        biased - 1023
    };
    Some(exp.clamp(MIN_EXP, MAX_EXP))
}

/// A mergeable log₂-bucket histogram. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Total observations, including non-positive ones.
    pub count: u64,
    /// Observations that were zero, negative, or non-finite; they sort
    /// below every bucket in quantile estimation.
    pub nonpositive: u64,
    /// Sparse bucket counts: `exp -> count` with every value in the
    /// bucket satisfying `2^exp <= v < 2^(exp+1)` (after clamping to
    /// `[MIN_EXP, MAX_EXP]`).
    pub buckets: BTreeMap<i32, u64>,
    /// Smallest finite observation (`+inf` observations excluded; `NaN`
    /// never folds in). Meaningless when `count == 0`.
    pub min: f64,
    /// Largest finite observation. Meaningless when `count == 0`.
    pub max: f64,
}

impl Default for Hist {
    /// Same as [`Hist::new`]: empty, with the `min`/`max` identity
    /// sentinels (`+inf`/`-inf`), *not* zeroed fields — a zeroed `min`
    /// would absorb every positive observation.
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            count: 0,
            nonpositive: 0,
            buckets: BTreeMap::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one observation in.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        match bucket_exp(v) {
            Some(exp) => *self.buckets.entry(exp).or_insert(0) += 1,
            None => self.nonpositive += 1,
        }
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Folds another histogram in. Associative and commutative: any
    /// merge tree over the same shards yields the identical histogram.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.nonpositive += other.nonpositive;
        for (&exp, &c) in &other.buckets {
            *self.buckets.entry(exp).or_insert(0) += c;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), `None` when
    /// empty.
    ///
    /// The estimate is the upper edge of the bucket holding the
    /// observation of rank `max(1, ceil(q * count))`, clamped into
    /// `[min, max]`. Error bound: the true quantile `t` satisfies
    /// `estimate / 2 < t <= estimate` before clamping (clamping only
    /// moves the estimate toward the true extremes). Ranks that land in
    /// the non-positive bin return `min`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= self.nonpositive {
            return Some(self.min);
        }
        let mut seen = self.nonpositive;
        for (&exp, &c) in &self.buckets {
            seen += c;
            if rank <= seen {
                let upper = exp2(exp + 1);
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Exports the `obs/hist/v1` JSON object: `{"schema", "count",
    /// "nonpositive", "min", "max", "buckets": [{"exp", "count"}, ..]}`.
    /// Buckets are emitted in ascending exponent order, so two equal
    /// histograms serialize to byte-identical strings.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"schema\":");
        push_str_lit(&mut out, HIST_SCHEMA);
        out.push_str(",\"count\":");
        push_u64(&mut out, self.count);
        out.push_str(",\"nonpositive\":");
        push_u64(&mut out, self.nonpositive);
        out.push_str(",\"min\":");
        push_f64(&mut out, if self.count == 0 { 0.0 } else { self.min });
        out.push_str(",\"max\":");
        push_f64(&mut out, if self.count == 0 { 0.0 } else { self.max });
        out.push_str(",\"buckets\":[");
        for (i, (&exp, &c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"exp\":");
            push_i64(&mut out, exp as i64);
            out.push_str(",\"count\":");
            push_u64(&mut out, c);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// `2^exp` as f64, exact over the tracked exponent range.
fn exp2(exp: i32) -> f64 {
    // MAX_EXP + 1 = 64 and MIN_EXP = -64 are both well inside f64's
    // normal exponent range, so this is exact
    f64::from_bits(((exp + 1023) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        assert_eq!(bucket_exp(1.0), Some(0));
        assert_eq!(bucket_exp(1.999_999), Some(0));
        assert_eq!(bucket_exp(2.0), Some(1));
        assert_eq!(bucket_exp(0.5), Some(-1));
        assert_eq!(bucket_exp(1e-9), Some(-30));
        assert_eq!(bucket_exp(0.0), None);
        assert_eq!(bucket_exp(-1.0), None);
        assert_eq!(bucket_exp(f64::NAN), None);
        assert_eq!(bucket_exp(f64::INFINITY), None);
        // clamping at both ends
        assert_eq!(bucket_exp(1e300), Some(MAX_EXP));
        assert_eq!(bucket_exp(5e-324), Some(MIN_EXP));
    }

    #[test]
    fn exp2_matches_powi() {
        for e in [-64, -30, -1, 0, 1, 30, 64] {
            assert_eq!(exp2(e), 2.0f64.powi(e), "exp {e}");
        }
    }

    #[test]
    fn observe_counts_and_extrema() {
        let mut h = Hist::new();
        for v in [0.5, 1.5, 1.6, 3.0, 0.0, -2.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.nonpositive, 2);
        assert_eq!(h.buckets[&-1], 1); // 0.5
        assert_eq!(h.buckets[&0], 2); // 1.5, 1.6
        assert_eq!(h.buckets[&1], 1); // 3.0
        assert_eq!(h.min, -2.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn merge_equals_interleaved_observation() {
        let values = [0.1, 0.2, 1.0, 2.0, 4.0, 8.0, 8.5, 0.0];
        let mut whole = Hist::new();
        for &v in &values {
            whole.observe(v);
        }
        let (a_vals, b_vals) = values.split_at(3);
        let mut a = Hist::new();
        let mut b = Hist::new();
        for &v in a_vals {
            a.observe(v);
        }
        for &v in b_vals {
            b.observe(v);
        }
        let mut merged = Hist::new();
        merged.merge(&b); // reverse order on purpose
        merged.merge(&a);
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json_string(), whole.to_json_string());
    }

    #[test]
    fn quantile_bounds_hold() {
        let mut h = Hist::new();
        let mut values: Vec<f64> = (1..=100).map(|i| i as f64 * 0.013).collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            assert!(est >= truth, "q={q}: est {est} < true {truth}");
            assert!(est < truth * 2.0 + 1e-12, "q={q}: est {est} >= 2x {truth}");
        }
    }

    #[test]
    fn quantile_handles_edge_populations() {
        assert_eq!(Hist::new().quantile(0.5), None);
        let mut h = Hist::new();
        h.observe(3.0);
        assert_eq!(h.quantile(0.0), Some(3.0)); // clamped to max
        assert_eq!(h.quantile(1.0), Some(3.0));
        let mut h = Hist::new();
        h.observe(0.0);
        h.observe(-1.0);
        // all-nonpositive population returns min
        assert_eq!(h.quantile(0.5), Some(-1.0));
    }

    #[test]
    fn json_is_schema_tagged_and_deterministic() {
        let mut h = Hist::new();
        h.observe(1.5);
        h.observe(0.25);
        let json = h.to_json_string();
        assert!(json.starts_with("{\"schema\":\"obs/hist/v1\""));
        assert!(json.contains("\"buckets\":[{\"exp\":-2,\"count\":1},{\"exp\":0,\"count\":1}]"));
        let empty = Hist::new().to_json_string();
        assert!(empty.contains("\"count\":0"));
        assert!(empty.contains("\"min\":0"), "{empty}");
    }
}
