//! Minimal JSON string building, internal to the exporters.
//!
//! The crate is intentionally zero-dependency (it sits below
//! `insitu-types` in the workspace graph), so the exporters assemble
//! their documents with these helpers instead of a value tree. Strings
//! are escaped per RFC 8259; floats use Rust's shortest-round-trip
//! formatting (the same guarantee `insitu_types::json` documents), and
//! non-finite floats — which JSON cannot represent — render as `null`.

use std::fmt::Write as _;

/// Appends a JSON string literal (with quotes) to `out`.
pub(crate) fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values render as `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `{}` prints integral floats without a dot ("3"); that is still
        // a valid JSON number, so no fix-up is needed.
    } else {
        out.push_str("null");
    }
}

/// Appends an unsigned integer.
pub(crate) fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

/// Appends a signed integer.
pub(crate) fn push_i64(out: &mut String, v: i64) {
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_lit(&mut out, s);
        out
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("x\ny\t"), "\"x\\ny\\t\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_and_nonfinite_is_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        out.push(',');
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_u64(&mut out, 42);
        out.push(',');
        push_i64(&mut out, -7);
        assert_eq!(out, "1.5,null,42,-7");
    }
}
