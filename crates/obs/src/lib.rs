//! Structured tracing and metrics for the in-situ scheduling stack.
//!
//! Every layer of the workspace measures something — the simulation
//! proxies record per-kernel wall time (`insitu_types::KernelTelemetry`),
//! the MILP solver counts nodes and pivots (`milp::SolveStats`), and the
//! runtime coupler times every analysis bracket — but before this crate
//! those measurements lived in disconnected structs that never met. `obs`
//! is the meeting point: a **std-only, zero-dependency** tracing and
//! metrics layer the rest of the workspace adopts.
//!
//! Five pieces:
//!
//! * [`Tracer`] — cheap span/event recording: monotonic timestamps from a
//!   per-tracer epoch, thread-id tagging, automatic parenting through a
//!   thread-local span stack, and a **bounded** buffer with an explicit
//!   drop counter, so overload is observable instead of silent and the
//!   hot path never reallocates. [`TraceHandle`] is the cloneable
//!   embed-anywhere form (a disabled handle is a no-op).
//! * [`Registry`] — one sink for counters, meters (count/sum/min/max)
//!   and latency histograms, with deterministic snapshots, a plain-text
//!   table and a JSON export. `KernelTelemetry`, `LpTelemetry` and
//!   `SolveStats` all gain `export_into(&Registry)` adapters in their own
//!   crates, so a coupled run, a solve and the bench binaries report
//!   through this one sink.
//! * [`Timeline`] — the recorded span tree of a run, with exporters to a
//!   stable JSON schema (`obs/timeline/v1`, documented in
//!   `EXPERIMENTS.md`) and to the Chrome trace-event format
//!   (loadable in `chrome://tracing` / `ui.perfetto.dev`), with one
//!   lane per request trace id.
//! * [`Hist`] — deterministic log₂-bucket histograms (`obs/hist/v1`):
//!   mergeable across threads with bitwise-identical snapshots for the
//!   same multiset of observations, and quantile estimates with a
//!   documented <2× error bound.
//! * [`TraceContext`] — request-scoped trace identity derived
//!   deterministically from an instance fingerprint + request sequence
//!   (no clocks, no randomness), stamped on every span/event recorded
//!   while [entered](TraceContext::enter).
//! * [`FlightRecorder`] — an always-on bounded ring of recent
//!   spans/events/counter deltas that renders the `flightrec/v1`
//!   post-mortem artifact on demand (the solve service dumps it on
//!   certify-reject and solver-error paths).
//!
//! The step-indexed run timeline emitted by
//! `insitu_core::runtime::run_coupled_traced` — one span per simulation
//! step, child spans per analysis execution and output write, tagged with
//! the scheduled `(analysis[i][j], output[i][j])` decision — is the
//! measured half of the predicted-vs-measured drift report in
//! `insitu_core::attribution`. See `docs/OBSERVABILITY.md` for the span
//! model and schema.

#![warn(missing_docs)]

mod json;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod timeline;
pub mod tracer;

pub use flight::{FlightEntry, FlightRecorder, FLIGHTREC_SCHEMA};
pub use hist::{Hist, HIST_SCHEMA};
pub use registry::{Meter, Registry, Snapshot};
pub use timeline::{Timeline, TIMELINE_SCHEMA};
pub use tracer::{
    trace_id_hex, ContextGuard, EventRecord, SpanGuard, SpanId, SpanRecord, TagValue, TraceContext,
    TraceHandle, Tracer,
};
