//! One sink for the workspace's counters, meters, and histograms.
//!
//! Every telemetry struct in the workspace (`KernelTelemetry`,
//! `LpTelemetry`, `SolveStats`, the coupler's `RunReport`) gains an
//! `export_into(&Registry)` adapter in its own crate, so a coupled run, a
//! solve and a bench binary all report through one [`Registry`] and print
//! one [`Snapshot`]. Names are dotted paths (`"md.force.wall_s"`,
//! `"milp.nodes_explored"`); snapshots iterate them in sorted order, so
//! output is deterministic.

use crate::flight::FlightRecorder;
use crate::hist::Hist;
use crate::json::{push_f64, push_str_lit, push_u64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// Aggregate of an observed f64 series: count, sum, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Meter {
    /// Number of observations folded in.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Meter {
    fn new(v: f64) -> Self {
        Meter {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn fold(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn fold_agg(&mut self, sum: f64, count: u64, min: f64, max: f64) {
        self.count += count;
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    meters: BTreeMap<String, Meter>,
    hists: BTreeMap<String, Hist>,
}

/// Thread-safe sink for named counters (u64, additive), meters
/// (f64 observations aggregated as count/sum/min/max), and log₂-bucket
/// histograms ([`Hist`], full distribution with quantile estimates).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
    flight: OnceLock<Arc<FlightRecorder>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tees every subsequent counter increment into `flight` as a
    /// [`crate::FlightEntry::Delta`]. One recorder per registry; later
    /// calls are ignored.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        let _ = self.flight.set(flight);
    }

    /// Adds `v` to the counter `name` (created at zero on first use).
    pub fn add(&self, name: &str, v: u64) {
        {
            let mut inner = self.inner.lock().unwrap();
            match inner.counters.get_mut(name) {
                Some(c) => *c += v,
                None => {
                    inner.counters.insert(name.to_string(), v);
                }
            }
        }
        if let Some(flight) = self.flight.get() {
            flight.record_delta(name, v);
        }
    }

    /// Folds one observation `v` into the histogram `name`.
    pub fn observe_hist(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Merges a locally-accumulated histogram shard into `name` — the
    /// cheap path for per-thread or per-batch shards (one lock per
    /// shard instead of one per observation).
    pub fn merge_hist(&self, name: &str, shard: &Hist) {
        if shard.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.hists.entry(name.to_string()).or_default().merge(shard);
    }

    /// Folds one observation `v` into the meter `name`.
    pub fn observe(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.meters.get_mut(name) {
            Some(m) => m.fold(v),
            None => {
                inner.meters.insert(name.to_string(), Meter::new(v));
            }
        }
    }

    /// Folds a pre-aggregated series into the meter `name` — used by
    /// adapters whose source already kept a sum over `count` samples but
    /// not the samples themselves. `min`/`max` fall back to `sum` when the
    /// source tracked no extrema.
    pub fn observe_agg(&self, name: &str, sum: f64, count: u64, min: f64, max: f64) {
        if count == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.meters.get_mut(name) {
            Some(m) => m.fold_agg(sum, count, min, max),
            None => {
                inner.meters.insert(
                    name.to_string(),
                    Meter {
                        count,
                        sum,
                        min,
                        max,
                    },
                );
            }
        }
    }

    /// Deterministic (name-sorted) copy of the registry's current state.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            meters: inner.meters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            hists: inner.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

/// A point-in-time, name-sorted copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, meter)` pairs, sorted by name.
    pub meters: Vec<(String, Meter)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub hists: Vec<(String, Hist)>,
}

impl Snapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Meter `name`, if present.
    pub fn meter(&self, name: &str) -> Option<&Meter> {
        self.meters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Histogram `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Plain-text table of every counter and meter, for run footers.
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("  counter                                  value\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v}");
            }
        }
        if !self.meters.is_empty() {
            out.push_str(
                "  meter                                    count        sum       mean        min        max\n",
            );
            for (name, m) in &self.meters {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    m.count,
                    m.sum,
                    m.mean(),
                    m.min,
                    m.max
                );
            }
        }
        if !self.hists.is_empty() {
            out.push_str(
                "  hist                                     count        p50        p90        p99        min        max\n",
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<40} {:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                    h.count,
                    h.quantile(0.50).unwrap_or(0.0),
                    h.quantile(0.90).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                    if h.is_empty() { 0.0 } else { h.min },
                    if h.is_empty() { 0.0 } else { h.max },
                );
            }
        }
        if out.is_empty() {
            out.push_str("  (registry empty)\n");
        }
        out
    }

    /// JSON export: `{"counters": {..}, "meters": {name: {count, sum,
    /// min, max}}}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_lit(&mut out, name);
            out.push(':');
            push_u64(&mut out, *v);
        }
        out.push_str("},\"meters\":{");
        for (i, (name, m)) in self.meters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_lit(&mut out, name);
            out.push_str(":{\"count\":");
            push_u64(&mut out, m.count);
            out.push_str(",\"sum\":");
            push_f64(&mut out, m.sum);
            out.push_str(",\"min\":");
            push_f64(&mut out, m.min);
            out.push_str(",\"max\":");
            push_f64(&mut out, m.max);
            out.push('}');
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_lit(&mut out, name);
            out.push(':');
            out.push_str(&h.to_json_string());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorts() {
        let r = Registry::new();
        r.add("z.late", 1);
        r.add("a.early", 2);
        r.add("a.early", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.early"), Some(5));
        assert_eq!(snap.counter("z.late"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.counters[0].0, "a.early");
    }

    #[test]
    fn meters_track_count_sum_min_max() {
        let r = Registry::new();
        r.observe("lat", 2.0);
        r.observe("lat", 4.0);
        r.observe("lat", 1.0);
        let snap = r.snapshot();
        let m = snap.meter("lat").unwrap();
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 7.0);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        assert!((m.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn preaggregated_observations_fold_in() {
        let r = Registry::new();
        r.observe_agg("k", 10.0, 4, 1.0, 5.0);
        r.observe_agg("k", 2.0, 1, 2.0, 2.0);
        r.observe_agg("k", 0.0, 0, 0.0, 0.0); // empty series is a no-op
        let snap = r.snapshot();
        let m = snap.meter("k").unwrap();
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 12.0);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 5.0);
    }

    #[test]
    fn table_and_json_render_both_kinds() {
        let r = Registry::new();
        r.add("milp.nodes_explored", 12);
        r.observe("md.force.wall_s", 0.25);
        let snap = r.snapshot();
        let table = snap.table();
        assert!(table.contains("milp.nodes_explored"));
        assert!(table.contains("md.force.wall_s"));
        let json = snap.to_json_string();
        assert!(json.contains("\"milp.nodes_explored\":12"));
        assert!(json.contains("\"md.force.wall_s\":{\"count\":1"));
        assert!(Registry::new().snapshot().table().contains("registry empty"));
    }

    #[test]
    fn hists_register_next_to_counters_and_meters() {
        let r = Registry::new();
        r.observe_hist("service.request.latency_s.fresh", 0.25);
        r.observe_hist("service.request.latency_s.fresh", 3.0);
        let mut shard = Hist::new();
        shard.observe(0.75);
        r.merge_hist("service.request.latency_s.fresh", &shard);
        r.merge_hist("ignored.empty", &Hist::new()); // no-op, not registered
        let snap = r.snapshot();
        let h = snap.hist("service.request.latency_s.fresh").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 3.0);
        assert!(snap.hist("ignored.empty").is_none());
        assert!(snap.table().contains("p50"));
        let json = snap.to_json_string();
        assert!(json.contains(
            "\"hists\":{\"service.request.latency_s.fresh\":{\"schema\":\"obs/hist/v1\""
        ));
    }

    #[test]
    fn hist_snapshot_is_order_invariant() {
        // same multiset of observations, different arrival orders and
        // shard splits -> byte-identical snapshot JSON
        let values = [0.1, 0.4, 0.4, 1.7, 2.0, 9.5];
        let a = Registry::new();
        for &v in &values {
            a.observe_hist("h", v);
        }
        let b = Registry::new();
        let mut shard = Hist::new();
        for &v in values.iter().rev().take(3) {
            shard.observe(v);
        }
        b.merge_hist("h", &shard);
        for &v in values.iter().take(3).rev() {
            b.observe_hist("h", v);
        }
        assert_eq!(a.snapshot().to_json_string(), b.snapshot().to_json_string());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.add("hits", 1);
                        r.observe("v", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), Some(400));
        assert_eq!(snap.meter("v").unwrap().count, 400);
    }
}
