//! The recorded span tree of a run, and its exporters.
//!
//! A [`Timeline`] is an immutable snapshot of a [`crate::Tracer`]'s
//! buffer: spans and events in record order (a span records when it
//! *closes*, so children precede their parents) plus the drop counter.
//! Two exporters are provided:
//!
//! * [`Timeline::to_json_string`] — the stable `obs/timeline/v1` schema
//!   documented in `EXPERIMENTS.md`; round-trips through any JSON parser
//!   (`insitu_types::json::Value::parse` in this workspace's tests).
//! * [`Timeline::to_chrome_trace_string`] — a Chrome trace-event array
//!   loadable directly in `chrome://tracing` or `ui.perfetto.dev`
//!   (complete `"ph":"X"` events, microsecond timestamps).
//!
//! [`Timeline::structural_fingerprint`] renders everything *except*
//! wall-clock fields (timestamps, durations, thread ids), which is what
//! the determinism tests compare across repeated runs and thread counts.

use crate::json::{push_f64, push_i64, push_str_lit, push_u64};
use crate::tracer::{EventRecord, SpanRecord, TagValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier written by [`Timeline::to_json_string`].
pub const TIMELINE_SCHEMA: &str = "obs/timeline/v1";

/// A snapshot of one tracer's recorded spans and events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Closed spans, in close order.
    pub spans: Vec<SpanRecord>,
    /// Events, in record order.
    pub events: Vec<EventRecord>,
    /// Records dropped because the tracer's buffer was full.
    pub dropped: u64,
}

impl Timeline {
    /// Spans named `name`, in record order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Events named `name`, in record order.
    pub fn events_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a crate::EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Direct children of span `id`, in record order.
    pub fn children_of(&self, id: crate::SpanId) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Structural sanity: span ids unique, every parent reference
    /// resolves to a recorded span. Dropped records legitimately break
    /// parent resolution, so a lossy timeline (`dropped > 0`) only checks
    /// id uniqueness.
    pub fn validate(&self) -> Result<(), String> {
        let mut ids = std::collections::BTreeSet::new();
        for s in &self.spans {
            if !ids.insert(s.id) {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        if self.dropped == 0 {
            for s in &self.spans {
                if let Some(p) = s.parent {
                    if !ids.contains(&p) {
                        return Err(format!("span {} parent {p} not recorded", s.id));
                    }
                }
            }
            for e in &self.events {
                if let Some(p) = e.parent {
                    if !ids.contains(&p) {
                        return Err(format!("event `{}` parent {p} not recorded", e.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the wall-clock-free structure of the timeline: every span
    /// (name, parent linkage, trace id, tags) and event, with span ids
    /// replaced by record ordinals so two runs of the same program
    /// compare equal even though their raw ids and timestamps differ.
    /// Trace ids are kept verbatim — they are derived from instance
    /// fingerprints, not clocks, so they too must reproduce.
    pub fn structural_fingerprint(&self) -> String {
        let ordinal: BTreeMap<crate::SpanId, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        let parent_of = |p: Option<crate::SpanId>| match p {
            None => "root".to_string(),
            Some(id) => match ordinal.get(&id) {
                Some(i) => format!("#{i}"),
                None => "dropped".to_string(),
            },
        };
        let mut out = String::new();
        for s in &self.spans {
            let _ = write!(out, "span {} parent={}", s.name, parent_of(s.parent));
            if let Some(t) = s.trace_id {
                let _ = write!(out, " trace={}", crate::tracer::trace_id_hex(t));
            }
            for (k, v) in &s.tags {
                let _ = write!(out, " {k}={v:?}");
            }
            out.push('\n');
        }
        for e in &self.events {
            let _ = write!(out, "event {} parent={}", e.name, parent_of(e.parent));
            if let Some(t) = e.trace_id {
                let _ = write!(out, " trace={}", crate::tracer::trace_id_hex(t));
            }
            for (k, v) in &e.tags {
                let _ = write!(out, " {k}={v:?}");
            }
            out.push('\n');
        }
        let _ = write!(out, "dropped {}", self.dropped);
        out
    }

    /// Exports the `obs/timeline/v1` JSON document (schema in
    /// `EXPERIMENTS.md`): `{"schema", "dropped", "spans": [...],
    /// "events": [...]}` with nanosecond integer timestamps.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(128 + 160 * self.spans.len());
        out.push_str("{\"schema\":");
        push_str_lit(&mut out, TIMELINE_SCHEMA);
        out.push_str(",\"dropped\":");
        push_u64(&mut out, self.dropped);
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_span_fields(&mut out, s);
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_event_fields(&mut out, e);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Distinct trace ids present on spans/events, ascending. The
    /// Chrome exporter assigns lane `pid = 2 + rank` in this ordering.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .spans
            .iter()
            .filter_map(|s| s.trace_id)
            .chain(self.events.iter().filter_map(|e| e.trace_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Exports a Chrome trace-event array (`chrome://tracing` /
    /// `ui.perfetto.dev`): one complete event (`"ph":"X"`) per span with
    /// microsecond `ts`/`dur`, one instant event (`"ph":"i"`) per event,
    /// tags in `args`.
    ///
    /// Records are grouped into per-request lanes: every distinct
    /// `trace_id` gets its own `pid` (2 + its rank in [`Timeline::trace_ids`]
    /// (Timeline::trace_ids), named `request <trace_id>` via
    /// `process_name` metadata), untraced records share `pid` 1
    /// (`untraced`). A `dropped_records` metadata record always carries
    /// the exact drop counter so overload is visible in the artifact.
    pub fn to_chrome_trace_string(&self) -> String {
        let ids = self.trace_ids();
        let pid_of = |t: Option<u64>| -> u64 {
            match t {
                None => 1,
                // ids came from the records, so the search always hits
                Some(t) => 2 + ids.binary_search(&t).unwrap_or(0) as u64,
            }
        };
        let mut out = String::with_capacity(256 + 160 * self.spans.len());
        out.push('[');
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"untraced\"}}",
        );
        for (rank, t) in ids.iter().enumerate() {
            out.push_str(",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
            push_u64(&mut out, 2 + rank as u64);
            out.push_str(",\"tid\":0,\"args\":{\"name\":");
            push_str_lit(&mut out, &format!("request {}", crate::tracer::trace_id_hex(*t)));
            out.push_str("}}");
        }
        out.push_str(",{\"name\":\"dropped_records\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"count\":");
        push_u64(&mut out, self.dropped);
        out.push_str("}}");
        for s in &self.spans {
            out.push_str(",{\"name\":");
            push_str_lit(&mut out, s.name);
            out.push_str(",\"cat\":\"insitu\",\"ph\":\"X\",\"ts\":");
            push_f64(&mut out, s.start_ns as f64 / 1e3);
            out.push_str(",\"dur\":");
            push_f64(&mut out, s.dur_ns as f64 / 1e3);
            out.push_str(",\"pid\":");
            push_u64(&mut out, pid_of(s.trace_id));
            out.push_str(",\"tid\":");
            push_u64(&mut out, s.tid as u64);
            out.push_str(",\"args\":");
            push_chrome_args(&mut out, s.id, s.parent, s.trace_id, &s.tags);
            out.push('}');
        }
        for e in &self.events {
            out.push_str(",{\"name\":");
            push_str_lit(&mut out, e.name);
            out.push_str(",\"cat\":\"insitu\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            push_f64(&mut out, e.ts_ns as f64 / 1e3);
            out.push_str(",\"pid\":");
            push_u64(&mut out, pid_of(e.trace_id));
            out.push_str(",\"tid\":");
            push_u64(&mut out, e.tid as u64);
            out.push_str(",\"args\":");
            push_chrome_args(&mut out, 0, e.parent, e.trace_id, &e.tags);
            out.push('}');
        }
        out.push(']');
        out
    }
}

/// Serializes one span's fields (no surrounding braces) — shared by the
/// timeline JSON exporter and the flight recorder's dump.
pub(crate) fn push_span_fields(out: &mut String, s: &SpanRecord) {
    out.push_str("\"id\":");
    push_u64(out, s.id);
    out.push_str(",\"parent\":");
    match s.parent {
        Some(p) => push_u64(out, p),
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":");
    push_str_lit(out, s.name);
    out.push_str(",\"trace_id\":");
    match s.trace_id {
        Some(t) => push_str_lit(out, &crate::tracer::trace_id_hex(t)),
        None => out.push_str("null"),
    }
    out.push_str(",\"tid\":");
    push_u64(out, s.tid as u64);
    out.push_str(",\"start_ns\":");
    push_u64(out, s.start_ns);
    out.push_str(",\"dur_ns\":");
    push_u64(out, s.dur_ns);
    out.push_str(",\"tags\":");
    push_tags(out, &s.tags);
}

/// Serializes one event's fields (no surrounding braces) — shared by the
/// timeline JSON exporter and the flight recorder's dump.
pub(crate) fn push_event_fields(out: &mut String, e: &EventRecord) {
    out.push_str("\"parent\":");
    match e.parent {
        Some(p) => push_u64(out, p),
        None => out.push_str("null"),
    }
    out.push_str(",\"name\":");
    push_str_lit(out, e.name);
    out.push_str(",\"trace_id\":");
    match e.trace_id {
        Some(t) => push_str_lit(out, &crate::tracer::trace_id_hex(t)),
        None => out.push_str("null"),
    }
    out.push_str(",\"tid\":");
    push_u64(out, e.tid as u64);
    out.push_str(",\"ts_ns\":");
    push_u64(out, e.ts_ns);
    out.push_str(",\"tags\":");
    push_tags(out, &e.tags);
}

fn push_tag_value(out: &mut String, v: &TagValue) {
    match v {
        TagValue::Int(i) => push_i64(out, *i),
        TagValue::Float(f) => push_f64(out, *f),
        TagValue::Str(s) => push_str_lit(out, s),
        TagValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_tags(out: &mut String, tags: &[(&'static str, TagValue)]) {
    out.push('{');
    for (i, (k, v)) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(out, k);
        out.push(':');
        push_tag_value(out, v);
    }
    out.push('}');
}

fn push_chrome_args(
    out: &mut String,
    id: crate::SpanId,
    parent: Option<crate::SpanId>,
    trace_id: Option<u64>,
    tags: &[(&'static str, TagValue)],
) {
    out.push('{');
    out.push_str("\"span_id\":");
    push_u64(out, id);
    if let Some(p) = parent {
        out.push_str(",\"parent\":");
        push_u64(out, p);
    }
    if let Some(t) = trace_id {
        out.push_str(",\"trace_id\":");
        push_str_lit(out, &crate::tracer::trace_id_hex(t));
    }
    for (k, v) in tags {
        out.push(',');
        push_str_lit(out, k);
        out.push(':');
        push_tag_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> Timeline {
        let t = Tracer::with_capacity(16);
        {
            let mut step = t.span("step");
            step.tag("step", 1usize);
            {
                let mut a = t.span("analysis.analyze");
                a.tag("analysis", 0usize);
                a.tag("name", "rdf \"quoted\"");
                a.tag("output", true);
            }
            t.event("sim.output", &[("bytes", TagValue::Float(1.5))]);
        }
        t.timeline()
    }

    #[test]
    fn json_export_has_schema_and_all_records() {
        let tl = sample();
        let json = tl.to_json_string();
        assert!(json.starts_with("{\"schema\":\"obs/timeline/v1\""));
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"name\":\"analysis.analyze\""));
        assert!(json.contains("\"rdf \\\"quoted\\\"\""));
        assert!(json.contains("\"output\":true"));
        assert!(json.contains("\"ts_ns\""));
        assert!(json.contains("\"trace_id\":null"));
    }

    #[test]
    fn chrome_export_is_an_array_of_complete_events() {
        let tl = sample();
        let chrome = tl.to_chrome_trace_string();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), tl.spans.len());
        assert_eq!(chrome.matches("\"ph\":\"i\"").count(), tl.events.len());
        assert!(chrome.contains("\"cat\":\"insitu\""));
        assert!(chrome.contains("\"span_id\":"));
        // lane metadata is always present, even with zero drops
        assert!(chrome.contains("\"name\":\"untraced\""));
        assert!(chrome.contains("\"name\":\"dropped_records\""));
        assert!(chrome.contains("\"count\":0"));
    }

    #[test]
    fn chrome_export_separates_request_lanes_and_reports_drops() {
        use crate::TraceContext;
        let t = Tracer::with_capacity(2);
        let c1 = TraceContext::derive(7, 0);
        let c2 = TraceContext::derive(7, 1);
        {
            let _g = c1.enter();
            let _s = t.span("req");
        }
        {
            let _g = c2.enter();
            let _s = t.span("req");
        }
        {
            let _s = t.span("overflow"); // capacity 2 -> dropped
        }
        let tl = t.timeline();
        assert_eq!(tl.dropped, 1);
        let ids = tl.trace_ids();
        assert_eq!(ids.len(), 2);
        let chrome = tl.to_chrome_trace_string();
        // one named lane per request, records routed to their lane
        for (rank, id) in ids.iter().enumerate() {
            let lane = format!(
                "\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"request {}\"}}",
                2 + rank,
                crate::tracer::trace_id_hex(*id)
            );
            assert!(chrome.contains(&lane), "{chrome}");
        }
        assert!(chrome.contains("\"pid\":2,"));
        assert!(chrome.contains("\"pid\":3,"));
        // the exact drop counter rides along as metadata
        assert!(chrome.contains("\"name\":\"dropped_records\""));
        assert!(chrome.contains("\"count\":1"));
        // args carry the resolvable trace id
        assert!(chrome.contains(&format!(
            "\"trace_id\":\"{}\"",
            crate::tracer::trace_id_hex(ids[0])
        )));
        // trace ids survive the structural fingerprint (they are
        // fingerprint-derived, not clock-derived)
        let fp = tl.structural_fingerprint();
        assert!(fp.contains(&format!("trace={}", crate::tracer::trace_id_hex(ids[0]))));
    }

    #[test]
    fn fingerprint_is_stable_across_reruns_and_ignores_clocks() {
        let a = sample();
        let b = sample();
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
        // the inner span closes (records) first, so the step span is
        // ordinal #1 and the child points at it
        let fp = a.structural_fingerprint();
        assert!(fp.contains("span analysis.analyze parent=#1"), "{fp}");
        assert!(fp.contains("span step parent=root"), "{fp}");
        assert!(fp.contains("dropped 0"), "{fp}");
    }

    #[test]
    fn validate_catches_dangling_parents() {
        let mut tl = sample();
        assert!(tl.validate().is_ok());
        tl.spans[0].parent = Some(9999);
        assert!(tl.validate().is_err());
        // ...unless records were dropped, in which case dangling parents
        // are expected
        tl.dropped = 1;
        assert!(tl.validate().is_ok());
    }

    #[test]
    fn helpers_navigate_the_tree() {
        let tl = sample();
        let step = tl.spans_named("step").next().unwrap();
        let kids = tl.children_of(step.id);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].name, "analysis.analyze");
    }
}
