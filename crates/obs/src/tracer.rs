//! Span and event recording.
//!
//! A [`Tracer`] owns a **bounded** record buffer sized once at
//! construction. Recording a span costs one monotonic-clock read at open
//! and one lock + `Vec` write (within pre-reserved capacity) at close;
//! when the buffer is full, new records are counted in an explicit drop
//! counter instead of growing the buffer — overload is observable, never
//! silent, and the hot path never reallocates the ring.
//!
//! Spans parent automatically: each thread keeps a stack of its open
//! spans (per tracer), and a new span's parent is the innermost open span
//! on the same thread. [`SpanGuard`] closes its span on drop, so ordinary
//! lexical scoping produces a well-formed tree.
//!
//! A disabled tracer ([`Tracer::disabled`], or a default
//! [`TraceHandle`]) turns every operation into a branch-and-return no-op,
//! which is what keeps `run_coupled`'s untraced path at its pre-tracing
//! cost.
//!
//! Request attribution rides on [`TraceContext`]: a deterministic
//! (fingerprint + sequence derived) trace identity that, while
//! [entered](TraceContext::enter), stamps every span and event recorded
//! on the thread with its `trace_id` — the key that separates
//! concurrent requests in the exporters. A tracer can also tee every
//! record into an always-on [`crate::FlightRecorder`]
//! ([`Tracer::attach_flight`]) so the most recent window survives even
//! when the bounded buffer overflows.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::flight::FlightRecorder;

/// Identifier of one recorded span, unique within its [`Tracer`].
pub type SpanId = u64;

/// Request-scoped trace identity, propagated to every span and event
/// recorded while it is [entered](TraceContext::enter).
///
/// A context is **derived, never random**: [`TraceContext::derive`]
/// hashes a 128-bit base (the canonical instance fingerprint in the
/// solve service) together with a request sequence number, so the same
/// request stream produces bitwise-identical trace ids at any worker
/// count — no wall clock, no RNG. `span_id` is the deterministic id of
/// the context's root span in the same derived namespace; nested
/// attempts (e.g. adaptive reschedules) derive children with
/// [`TraceContext::child`].
///
/// Entering a context pushes it on a per-thread stack; every
/// span/event recorded by any tracer on that thread while the guard
/// lives carries `trace_id` (see [`SpanRecord::trace_id`]). The
/// exporters surface it: the JSON schema writes a `trace_id` hex field
/// and the Chrome exporter assigns each trace its own process lane, so
/// concurrent requests separate visually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 64-bit trace identifier, shared by every span of the request.
    pub trace_id: u64,
    /// Deterministic root span id of the trace (same derived namespace).
    pub span_id: u64,
}

// FNV-1a 128-bit, matching the style of certify's fingerprint hash.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv128(domain: &str, base: u128, seq: u64) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in domain
        .as_bytes()
        .iter()
        .chain(base.to_le_bytes().iter())
        .chain(seq.to_le_bytes().iter())
    {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl TraceContext {
    /// Derives the context of request number `seq` under the 128-bit
    /// `base` (e.g. a canonical instance fingerprint). Pure function of
    /// its inputs: the trace-id determinism tests pin that the same
    /// `(base, seq)` yields the same context on every run and at every
    /// thread count.
    pub fn derive(base: u128, seq: u64) -> TraceContext {
        let h = fnv128("obs-trace-context/v1", base, seq);
        TraceContext {
            trace_id: (h >> 64) as u64,
            span_id: h as u64,
        }
    }

    /// Derives a child context (attempt `seq` inside this trace) —
    /// same trace lane semantics, distinct span id namespace.
    pub fn child(&self, seq: u64) -> TraceContext {
        let h = fnv128(
            "obs-trace-context-child/v1",
            ((self.trace_id as u128) << 64) | self.span_id as u128,
            seq,
        );
        TraceContext {
            trace_id: self.trace_id,
            span_id: h as u64,
        }
    }

    /// The trace id as 16 lowercase hex characters (the form the JSON
    /// exporters write).
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Enters this context on the current thread: until the returned
    /// guard drops, every span and event recorded on this thread (by
    /// any tracer) carries [`TraceContext::trace_id`]. Contexts nest;
    /// the innermost wins.
    pub fn enter(self) -> ContextGuard {
        CTX_STACK.with(|s| s.borrow_mut().push(self.trace_id));
        ContextGuard { _priv: () }
    }
}

/// Renders a trace id the way the exporters do (16 lowercase hex
/// characters).
pub fn trace_id_hex(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

// Per-thread stack of entered trace contexts. Global (not per-tracer):
// the context describes the *work* a thread is doing, so every sink
// observing that work stamps the same request identity.
thread_local! {
    static CTX_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_trace_id() -> Option<u64> {
    CTX_STACK.with(|s| s.borrow().last().copied())
}

/// Keeps a [`TraceContext`] entered until dropped.
#[derive(Debug)]
pub struct ContextGuard {
    _priv: (),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// A tag value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// Signed integer (step indices, analysis ids, thread counts).
    Int(i64),
    /// Floating-point value (residuals, fractions).
    Float(f64),
    /// String value (analysis names).
    Str(String),
    /// Boolean flag (scheduled-decision bits).
    Bool(bool),
}

impl TagValue {
    /// The integer payload, if this tag is an [`TagValue::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            TagValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this tag is a [`TagValue::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TagValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this tag is a [`TagValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TagValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this tag is a [`TagValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TagValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<i64> for TagValue {
    fn from(v: i64) -> Self {
        TagValue::Int(v)
    }
}
impl From<usize> for TagValue {
    fn from(v: usize) -> Self {
        TagValue::Int(v as i64)
    }
}
impl From<f64> for TagValue {
    fn from(v: f64) -> Self {
        TagValue::Float(v)
    }
}
impl From<bool> for TagValue {
    fn from(v: bool) -> Self {
        TagValue::Bool(v)
    }
}
impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_string())
    }
}
impl From<String> for TagValue {
    fn from(v: String) -> Self {
        TagValue::Str(v)
    }
}

/// One closed span: a named, tagged interval on one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within the tracer; ids increase in open order.
    pub id: SpanId,
    /// Enclosing span open on the same thread when this one opened.
    pub parent: Option<SpanId>,
    /// Span name (static label, e.g. `"step"`, `"analysis.analyze"`).
    pub name: &'static str,
    /// Small dense per-process thread index (not the OS thread id).
    pub tid: u32,
    /// Open time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace id of the [`TraceContext`] entered when the span opened;
    /// `None` outside any request context.
    pub trace_id: Option<u64>,
    /// Tags in the order they were attached.
    pub tags: Vec<(&'static str, TagValue)>,
}

impl SpanRecord {
    /// Value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Integer value of tag `key`, if present and integral.
    pub fn tag_i64(&self, key: &str) -> Option<i64> {
        self.tag(key).and_then(TagValue::as_i64)
    }
}

/// One instantaneous event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Enclosing span open on the same thread when the event fired.
    pub parent: Option<SpanId>,
    /// Event name.
    pub name: &'static str,
    /// Small dense per-process thread index.
    pub tid: u32,
    /// Time in nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Trace id of the [`TraceContext`] entered when the event fired;
    /// `None` outside any request context.
    pub trace_id: Option<u64>,
    /// Tags in the order they were attached.
    pub tags: Vec<(&'static str, TagValue)>,
}

impl EventRecord {
    /// Value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&TagValue> {
        self.tags.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Integer value of tag `key`, if present and integral.
    pub fn tag_i64(&self, key: &str) -> Option<i64> {
        self.tag(key).and_then(TagValue::as_i64)
    }

    /// Float value of tag `key`, if present and floating-point.
    pub fn tag_f64(&self, key: &str) -> Option<f64> {
        self.tag(key).and_then(TagValue::as_f64)
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Rec {
    Span(SpanRecord),
    Event(EventRecord),
}

// Dense per-process thread indices: the first thread that records gets 0,
// the next 1, ... — stable within a process run and compact in exports.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u32 {
    TID.with(|t| *t)
}

// Per-thread stack of open spans, as (tracer id, span id) pairs so
// concurrently active tracers on one thread cannot cross-parent.
thread_local! {
    static SPAN_STACK: RefCell<Vec<(u64, SpanId)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// A bounded span/event recorder. See the [module docs](self).
#[derive(Debug)]
pub struct Tracer {
    tracer_id: u64,
    capacity: usize,
    epoch: Instant,
    next_span: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<Vec<Rec>>,
    flight: OnceLock<Arc<FlightRecorder>>,
}

impl Tracer {
    /// A tracer that can hold up to `capacity` records (spans + events).
    /// The buffer is allocated once here; the recording path never grows
    /// it. `capacity == 0` yields a disabled tracer.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(Vec::with_capacity(capacity)),
            flight: OnceLock::new(),
        }
    }

    /// Attaches a [`FlightRecorder`]: every span/event recorded from now
    /// on — including records the bounded buffer drops — also enters the
    /// recorder's ring. At most one recorder can be attached; later calls
    /// are ignored.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        let _ = self.flight.set(flight);
    }

    /// A tracer that records nothing and counts nothing. All operations
    /// are cheap no-ops; [`Tracer::enabled`] is `false`.
    pub fn disabled() -> Tracer {
        Tracer::with_capacity(0)
    }

    /// Whether this tracer records at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Current allocated capacity of the record buffer, in records. The
    /// overload tests pin that this never grows past the constructor's
    /// `capacity`.
    pub fn ring_allocated(&self) -> usize {
        self.buf.lock().unwrap().capacity()
    }

    /// Opens a span named `name`, parented to the innermost span open on
    /// this thread (of this tracer). The span closes — and is recorded —
    /// when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                tracer: self,
                live: false,
                id: 0,
                parent: None,
                name,
                start_ns: 0,
                trace_id: None,
                tags: Vec::new(),
            };
        }
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tracer_id)
                .map(|(_, id)| *id);
            s.push((self.tracer_id, id));
            parent
        });
        SpanGuard {
            tracer: self,
            live: true,
            id,
            parent,
            name,
            start_ns: self.now_ns(),
            trace_id: current_trace_id(),
            tags: Vec::new(),
        }
    }

    /// Records an instantaneous event, parented like a span would be.
    pub fn event(&self, name: &'static str, tags: &[(&'static str, TagValue)]) {
        if !self.enabled() {
            return;
        }
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == self.tracer_id)
                .map(|(_, id)| *id)
        });
        self.push(Rec::Event(EventRecord {
            parent,
            name,
            tid: current_tid(),
            ts_ns: self.now_ns(),
            trace_id: current_trace_id(),
            tags: tags.to_vec(),
        }));
    }

    /// Snapshot of everything recorded so far, in record order.
    pub fn timeline(&self) -> crate::Timeline {
        let buf = self.buf.lock().unwrap();
        let mut spans = Vec::new();
        let mut events = Vec::new();
        for rec in buf.iter() {
            match rec {
                Rec::Span(s) => spans.push(s.clone()),
                Rec::Event(e) => events.push(e.clone()),
            }
        }
        crate::Timeline {
            spans,
            events,
            dropped: self.dropped(),
        }
    }

    fn push(&self, rec: Rec) {
        if let Some(flight) = self.flight.get() {
            match &rec {
                Rec::Span(s) => flight.record_span(s.clone()),
                Rec::Event(e) => flight.record_event(e.clone()),
            }
        }
        let mut buf = self.buf.lock().unwrap();
        if buf.len() < self.capacity {
            buf.push(rec);
        } else {
            drop(buf);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn close_span(&self, guard: &mut SpanGuard<'_>) {
        // pop this span from the thread's stack; out-of-order drops (a
        // guard outliving its scope) are tolerated by removing wherever
        // the entry sits
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(t, id)| t == self.tracer_id && id == guard.id)
            {
                s.remove(pos);
            }
        });
        let end = self.now_ns();
        self.push(Rec::Span(SpanRecord {
            id: guard.id,
            parent: guard.parent,
            name: guard.name,
            tid: current_tid(),
            start_ns: guard.start_ns,
            dur_ns: end.saturating_sub(guard.start_ns),
            trace_id: guard.trace_id,
            tags: std::mem::take(&mut guard.tags),
        }));
    }
}

/// An open span; closes and records itself on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    live: bool,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    trace_id: Option<u64>,
    tags: Vec<(&'static str, TagValue)>,
}

impl SpanGuard<'_> {
    /// Attaches a tag. No-op on a disabled tracer.
    pub fn tag(&mut self, key: &'static str, value: impl Into<TagValue>) {
        if self.live {
            self.tags.push((key, value.into()));
        }
    }

    /// The span's id, when live (None on a disabled tracer).
    pub fn id(&self) -> Option<SpanId> {
        self.live.then_some(self.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.live {
            self.tracer.close_span(self);
        }
    }
}

/// A cloneable, embed-anywhere handle to a shared [`Tracer`].
///
/// The default handle is disabled (every operation a no-op), so
/// simulation states can carry one unconditionally and pay nothing when
/// tracing is off.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Tracer>>);

impl TraceHandle {
    /// A handle to `tracer`.
    pub fn new(tracer: Arc<Tracer>) -> TraceHandle {
        TraceHandle(Some(tracer))
    }

    /// A handle that records nothing.
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// The underlying tracer, if attached.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.0.as_deref()
    }

    /// Whether spans recorded through this handle go anywhere.
    pub fn enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|t| t.enabled())
    }

    /// Opens a span (see [`Tracer::span`]); a no-op guard when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        match &self.0 {
            Some(t) => t.span(name),
            None => DISABLED.span(name),
        }
    }

    /// Records an event (see [`Tracer::event`]); no-op when disabled.
    pub fn event(&self, name: &'static str, tags: &[(&'static str, TagValue)]) {
        if let Some(t) = &self.0 {
            t.event(name, tags);
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(t) => write!(f, "TraceHandle(enabled: {})", t.enabled()),
            None => f.write_str("TraceHandle(disabled)"),
        }
    }
}

// Shared sink for `TraceHandle::span` on a detached handle: guards need a
// tracer reference, and a single process-wide disabled tracer avoids
// allocating one per call.
static DISABLED: std::sync::LazyLock<Tracer> = std::sync::LazyLock::new(Tracer::disabled);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_tag() {
        let t = Tracer::with_capacity(16);
        {
            let mut outer = t.span("outer");
            outer.tag("step", 3usize);
            {
                let mut inner = t.span("inner");
                inner.tag("analysis", 1usize);
                inner.tag("name", "rdf");
            }
            t.event("tick", &[("flag", TagValue::Bool(true))]);
        }
        let tl = t.timeline();
        assert_eq!(tl.dropped, 0);
        assert_eq!(tl.spans.len(), 2);
        // inner closed first
        let inner = &tl.spans[0];
        let outer = &tl.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.tag_i64("step"), Some(3));
        assert_eq!(inner.tag("name").and_then(TagValue::as_str), Some("rdf"));
        assert_eq!(tl.events.len(), 1);
        assert_eq!(tl.events[0].parent, Some(outer.id));
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn overload_counts_exact_drops_and_never_reallocates() {
        let t = Tracer::with_capacity(8);
        let allocated = t.ring_allocated();
        assert_eq!(allocated, 8);
        for _ in 0..20 {
            let _g = t.span("s");
        }
        t.event("e", &[]);
        let tl = t.timeline();
        assert_eq!(tl.spans.len(), 8, "buffer holds exactly its capacity");
        assert_eq!(tl.dropped, 13, "12 spans + 1 event dropped, exactly");
        assert_eq!(
            t.ring_allocated(),
            allocated,
            "overload must not grow the ring"
        );
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        {
            let mut g = t.span("s");
            g.tag("k", 1usize);
            assert_eq!(g.id(), None);
        }
        t.event("e", &[]);
        let tl = t.timeline();
        assert!(tl.spans.is_empty() && tl.events.is_empty());
        assert_eq!(tl.dropped, 0, "disabled tracing is not overload");
    }

    #[test]
    fn handle_default_is_disabled_and_shared_handles_record() {
        let h = TraceHandle::default();
        assert!(!h.enabled());
        let _g = h.span("noop");
        h.event("noop", &[]);

        let tracer = Arc::new(Tracer::with_capacity(8));
        let h1 = TraceHandle::new(tracer.clone());
        let h2 = h1.clone();
        {
            let _a = h1.span("a");
            let _b = h2.span("b");
        }
        let tl = tracer.timeline();
        assert_eq!(tl.spans.len(), 2);
        // both handles feed the same tracer, and b parents under a
        assert_eq!(tl.spans[0].name, "b");
        assert_eq!(tl.spans[0].parent, Some(tl.spans[1].id));
    }

    #[test]
    fn concurrent_tracers_do_not_cross_parent() {
        let a = Tracer::with_capacity(4);
        let b = Tracer::with_capacity(4);
        let _ga = a.span("a.outer");
        {
            let _gb = b.span("b.inner");
        }
        let tb = b.timeline();
        assert_eq!(tb.spans[0].parent, None, "b must not parent under a's span");
    }

    #[test]
    fn trace_context_is_derived_not_random() {
        let a = TraceContext::derive(42, 7);
        let b = TraceContext::derive(42, 7);
        assert_eq!(a, b);
        assert_ne!(a, TraceContext::derive(42, 8));
        assert_ne!(a, TraceContext::derive(43, 7));
        let child = a.child(1);
        assert_eq!(child.trace_id, a.trace_id, "children stay in the lane");
        assert_ne!(child.span_id, a.span_id);
        assert_ne!(child, a.child(2));
        assert_eq!(a.trace_id_hex().len(), 16);
    }

    #[test]
    fn entered_context_stamps_spans_and_events() {
        let t = Tracer::with_capacity(16);
        {
            let _outside = t.span("outside");
        }
        let ctx = TraceContext::derive(1, 1);
        let inner_ctx = TraceContext::derive(1, 2);
        {
            let _g = ctx.enter();
            let _s = t.span("inside");
            t.event("tick", &[]);
            {
                let _g2 = inner_ctx.enter();
                let _s2 = t.span("nested");
            }
            let _after = t.span("after-nested");
        }
        {
            let _post = t.span("post");
        }
        let tl = t.timeline();
        let find = |n: &str| tl.spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("outside").trace_id, None);
        assert_eq!(find("inside").trace_id, Some(ctx.trace_id));
        assert_eq!(find("nested").trace_id, Some(inner_ctx.trace_id));
        assert_eq!(find("after-nested").trace_id, Some(ctx.trace_id));
        assert_eq!(find("post").trace_id, None);
        assert_eq!(tl.events[0].trace_id, Some(ctx.trace_id));
    }

    #[test]
    fn context_is_per_thread() {
        let t = Tracer::with_capacity(8);
        let ctx = TraceContext::derive(9, 9);
        let _g = ctx.enter();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = t.span("worker");
            });
        });
        let tl = t.timeline();
        assert_eq!(
            tl.spans[0].trace_id, None,
            "contexts do not leak across threads"
        );
    }

    #[test]
    fn threads_get_distinct_tids() {
        let t = Tracer::with_capacity(8);
        {
            let _g = t.span("main");
        }
        let tid_main = t.timeline().spans[0].tid;
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = t.span("worker");
            });
        });
        let tl = t.timeline();
        let worker = tl.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_ne!(worker.tid, tid_main);
        assert_eq!(worker.parent, None, "stacks are per-thread");
    }
}
