//! Deterministic parallel-for / parallel-reduce on scoped std threads.
//!
//! The kernels in `mdsim`/`amrsim` must produce **bitwise identical**
//! results at any thread count so that profiling runs, golden tables and
//! the differential test corpus stay stable across machines. Two rules
//! make that possible:
//!
//! 1. **Fixed chunking** — the number of chunks is a function of problem
//!    size only, never of the thread count ([`chunk_count`] +
//!    [`chunk_bounds`]). The 1-thread path executes the *same* chunked
//!    code, so serial and parallel runs share an identical floating-point
//!    summation tree.
//! 2. **Ordered reduction** — each chunk produces an independent partial
//!    result; partials are merged sequentially in ascending chunk index
//!    ([`reduce_chunks`], or the caller's own merge loop over
//!    [`map_chunks`] output). Which *thread* computed a chunk is
//!    scheduling noise; the merge order is not.
//!
//! Thread counts come from an explicit [`Exec`] handle (no global mutable
//! state — concurrently running tests would race on it). [`Exec::from_env`]
//! reads the `INSITU_THREADS` environment variable once at construction.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Upper bound on chunks per kernel invocation. Bounds per-chunk scratch
/// memory (e.g. force accumulators are 3·N floats per chunk) while leaving
/// enough slack for dynamic load balancing on oversubscribed machines.
pub const MAX_CHUNKS: usize = 32;

/// Default [`Exec::chunk_cap`]: kernels that carry a full-size scratch
/// accumulator per chunk (the MD force loop) cap their chunk count here,
/// because every extra chunk costs an O(N) buffer plus O(N) merge work.
pub const DEFAULT_CHUNK_CAP: usize = 8;

/// An execution context: how many worker threads kernels may use, plus the
/// per-kernel scratch-chunk policy.
///
/// Carried by value on simulation state (`System`, `FlashSim`) so analyses
/// that only see `&state` inherit the choice without new plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    threads: usize,
    chunk_cap: usize,
}

impl Exec {
    /// Single-threaded execution (used to pin profiling anchors).
    pub fn serial() -> Self {
        Exec {
            threads: 1,
            chunk_cap: DEFAULT_CHUNK_CAP,
        }
    }

    /// Execution with exactly `n` worker threads (clamped to >= 1).
    pub fn with_threads(n: usize) -> Self {
        Exec {
            threads: n.max(1),
            chunk_cap: DEFAULT_CHUNK_CAP,
        }
    }

    /// Reads `INSITU_THREADS` (worker count) and `INSITU_CHUNK_CAP`
    /// (scratch-chunk cap) from the environment; threads fall back to the
    /// machine's available parallelism, the cap to [`DEFAULT_CHUNK_CAP`].
    pub fn from_env() -> Self {
        let threads = std::env::var("INSITU_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let chunk_cap = std::env::var("INSITU_CHUNK_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CHUNK_CAP);
        Exec { threads, chunk_cap }
    }

    /// Number of worker threads this context allows.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk cap for kernels whose per-chunk scratch is proportional to
    /// the whole problem (each chunk of the MD force loop accumulates into
    /// a private 3·N buffer that must be merged). Changing the cap changes
    /// the summation tree, so it must be fixed per run — like the chunk
    /// count itself, it is policy, never derived from the thread count.
    pub fn chunk_cap(&self) -> usize {
        self.chunk_cap
    }

    /// Returns a copy with the scratch-chunk cap set to `n` (clamped
    /// to >= 1).
    pub fn with_chunk_cap(self, n: usize) -> Self {
        Exec {
            chunk_cap: n.max(1),
            ..self
        }
    }
}

impl Default for Exec {
    /// Defaults to [`Exec::from_env`] so state constructors pick up
    /// `INSITU_THREADS` without extra wiring.
    fn default() -> Self {
        Exec::from_env()
    }
}

/// Timing/shape record of one parallel kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Threads actually used (min of context threads and chunk count).
    pub threads_used: usize,
    /// Number of chunks the work was split into.
    pub chunks: usize,
    /// Wall time of the whole invocation (including the merge, if any).
    pub wall: Duration,
    /// Time spent in the ordered merge of partial results.
    pub merge: Duration,
}

impl ParStats {
    /// Wall seconds as `f64` (telemetry convenience).
    pub fn wall_s(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Merge seconds as `f64` (telemetry convenience).
    pub fn merge_s(&self) -> f64 {
        self.merge.as_secs_f64()
    }
}

/// Deterministic chunk count for `n_items` work items with roughly
/// `granularity` items per chunk, clamped to `[1, MAX_CHUNKS]` and never
/// exceeding `n_items`. Depends only on the problem size — never on the
/// thread count — so the reduction tree is fixed.
pub fn chunk_count(n_items: usize, granularity: usize) -> usize {
    if n_items == 0 {
        return 1;
    }
    (n_items / granularity.max(1)).clamp(1, MAX_CHUNKS).min(n_items)
}

/// Half-open item range of chunk `c` out of `chunks` over `n_items`,
/// splitting as evenly as possible (remainder spread over the first
/// chunks). Requires `c < chunks` and `chunks >= 1`.
pub fn chunk_bounds(n_items: usize, chunks: usize, c: usize) -> std::ops::Range<usize> {
    debug_assert!(c < chunks && chunks >= 1);
    let base = n_items / chunks;
    let rem = n_items % chunks;
    let start = c * base + c.min(rem);
    let len = base + usize::from(c < rem);
    start..start + len
}

/// Runs `f(c)` for every chunk index `c in 0..chunks` and returns the
/// results **in chunk order** plus timing stats.
///
/// Chunks are claimed dynamically by worker threads (an atomic counter),
/// so which thread runs a chunk is nondeterministic — but each result is
/// placed at its chunk index, so the output is not. With 1 thread (or 1
/// chunk) the chunks run inline in index order over the identical code
/// path.
pub fn map_chunks<T: Send>(
    exec: &Exec,
    chunks: usize,
    f: impl Fn(usize) -> T + Sync,
) -> (Vec<T>, ParStats) {
    let t0 = Instant::now();
    let threads = exec.threads.min(chunks).max(1);
    let results: Vec<T> = if threads <= 1 {
        (0..chunks).map(&f).collect()
    } else {
        let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let r = f(c);
                    *slots[c].lock().expect("chunk slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("chunk slot poisoned")
                    .expect("chunk ran")
            })
            .collect()
    };
    let stats = ParStats {
        threads_used: threads,
        chunks,
        wall: t0.elapsed(),
        merge: Duration::ZERO,
    };
    (results, stats)
}

/// Maps every chunk with `map`, then folds the partial results into `init`
/// **in ascending chunk order** with `fold`. The ordered fold is what
/// makes floating-point reductions thread-count independent.
pub fn reduce_chunks<T: Send, R>(
    exec: &Exec,
    chunks: usize,
    map: impl Fn(usize) -> T + Sync,
    init: R,
    mut fold: impl FnMut(R, T) -> R,
) -> (R, ParStats) {
    let t0 = Instant::now();
    let (parts, mut stats) = map_chunks(exec, chunks, map);
    let m0 = Instant::now();
    let mut acc = init;
    for p in parts {
        acc = fold(acc, p);
    }
    stats.merge = m0.elapsed();
    stats.wall = t0.elapsed();
    (acc, stats)
}

/// Runs `f(i, &mut items[i])` for every item, in parallel. Each closure
/// invocation owns its item exclusively, so this is trivially
/// deterministic for independent per-item updates (e.g. one AMR block
/// per item).
pub fn for_each_mut<T: Send>(
    exec: &Exec,
    items: &mut [T],
    f: impl Fn(usize, &mut T) + Sync,
) -> ParStats {
    let t0 = Instant::now();
    let n = items.len();
    let threads = exec.threads.min(n).max(1);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
    } else {
        let work = Mutex::new(items.iter_mut().enumerate());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let claimed = work.lock().expect("work queue poisoned").next();
                    match claimed {
                        Some((i, item)) => f(i, item),
                        None => break,
                    }
                });
            }
        });
    }
    ParStats {
        threads_used: threads,
        chunks: n,
        wall: t0.elapsed(),
        merge: Duration::ZERO,
    }
}

/// Fills disjoint chunk ranges of `out` in parallel: `f(c, start, slice)`
/// receives chunk index `c`, the global index of the slice's first element
/// and the chunk's sub-slice of `out`. Deterministic because every element
/// is written by exactly one chunk and the chunking is fixed.
pub fn fill_chunks<T: Send>(
    exec: &Exec,
    out: &mut [T],
    chunks: usize,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) -> ParStats {
    let t0 = Instant::now();
    let n = out.len();
    if n == 0 {
        return ParStats {
            threads_used: 1,
            chunks: 0,
            wall: t0.elapsed(),
            merge: Duration::ZERO,
        };
    }
    let chunks = chunks.clamp(1, n);
    let threads = exec.threads.min(chunks).max(1);
    // split `out` into the chunk_bounds sub-slices
    let mut parts: Vec<(usize, usize, &mut [T])> = Vec::with_capacity(chunks);
    let mut rest = out;
    let mut offset = 0usize;
    for c in 0..chunks {
        let len = chunk_bounds(n, chunks, c).len();
        let (head, tail) = rest.split_at_mut(len);
        parts.push((c, offset, head));
        offset += len;
        rest = tail;
    }
    if threads <= 1 {
        for (c, start, slice) in parts {
            f(c, start, slice);
        }
    } else {
        let work = Mutex::new(parts.into_iter());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let claimed = work.lock().expect("work queue poisoned").next();
                    match claimed {
                        Some((c, start, slice)) => f(c, start, slice),
                        None => break,
                    }
                });
            }
        });
    }
    ParStats {
        threads_used: threads,
        chunks,
        wall: t0.elapsed(),
        merge: Duration::ZERO,
    }
}

/// Allocation/reuse counters of a [`ScratchPool`], for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Buffers that had to be freshly allocated (pool miss).
    pub allocs: usize,
    /// Buffers served from the pool (no allocation).
    pub reuses: usize,
}

impl ScratchCounters {
    /// Component-wise difference since an earlier snapshot (counters are
    /// monotonic, so this is the activity between the two reads).
    pub fn since(&self, earlier: &ScratchCounters) -> ScratchCounters {
        ScratchCounters {
            allocs: self.allocs - earlier.allocs,
            reuses: self.reuses - earlier.reuses,
        }
    }
}

/// Bound on buffers retained per size class, so a pathological mix of
/// sizes cannot hoard memory. Kernels use a handful of sizes, far below
/// this.
const MAX_POOLED_PER_SIZE: usize = 256;

/// A pool of reusable `f64` scratch buffers, keyed by length.
///
/// Parallel kernels that need a private accumulator per chunk (the MD
/// force loop's 3·N partial forces, the AMR sweep's per-block conservative
/// deltas, ghost-exchange planes) would otherwise allocate and free those
/// buffers every step. The pool hands the same allocations back out:
/// after a warm-up step, steady-state kernel execution performs **zero**
/// scratch allocations, which the [`ScratchCounters`] prove.
///
/// # Determinism
///
/// The pool never affects results. [`ScratchPool::take_zeroed`] returns a
/// fully zeroed buffer — indistinguishable from `vec![0.0; len]` — and
/// [`ScratchPool::take`] is reserved for buffers the kernel overwrites
/// completely before reading. Which physical allocation a chunk receives
/// is scheduling noise, exactly like which thread runs the chunk.
///
/// # Ownership
///
/// The pool lives on the owning state (`System`, `FlashSim`, a kernel
/// struct) next to its `KernelTelemetry`. It is `Sync`: chunks running on
/// worker threads take and return buffers concurrently through an internal
/// lock held only for the shelf operation, never while the buffer is in
/// use. `Clone` yields a fresh **empty** pool (clones of a simulation
/// state must not share buffers), so cloned states simply re-warm.
#[derive(Debug, Default)]
pub struct ScratchPool {
    shelves: Mutex<BTreeMap<usize, Vec<Vec<f64>>>>,
    allocs: AtomicUsize,
    reuses: AtomicUsize,
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        ScratchPool::new()
    }
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer of exactly `len` elements with **unspecified**
    /// contents (stale data from a previous user). Only for kernels that
    /// overwrite every element before reading any.
    pub fn take(&self, len: usize) -> Vec<f64> {
        let pooled = self
            .shelves
            .lock()
            .expect("scratch pool poisoned")
            .get_mut(&len)
            .and_then(Vec::pop);
        match pooled {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Takes a buffer of exactly `len` zeros — a drop-in replacement for
    /// `vec![0.0; len]` that reuses pooled storage.
    pub fn take_zeroed(&self, len: usize) -> Vec<f64> {
        let mut buf = self.take(len);
        buf.iter_mut().for_each(|x| *x = 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse. Buffers beyond
    /// `MAX_POOLED_PER_SIZE` of the same length are dropped.
    pub fn put(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        let len = buf.len();
        let mut shelves = self.shelves.lock().expect("scratch pool poisoned");
        let shelf = shelves.entry(len).or_default();
        if shelf.len() < MAX_POOLED_PER_SIZE {
            shelf.push(buf);
        }
    }

    /// Current allocation/reuse counters (monotonic since construction).
    pub fn counters(&self) -> ScratchCounters {
        ScratchCounters {
            allocs: self.allocs.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently resting in the pool.
    pub fn pooled(&self) -> usize {
        self.shelves
            .lock()
            .expect("scratch pool poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_count_depends_only_on_size() {
        assert_eq!(chunk_count(0, 100), 1);
        assert_eq!(chunk_count(5, 100), 1);
        assert_eq!(chunk_count(10, 1), 10);
        assert_eq!(chunk_count(10_000, 10), MAX_CHUNKS);
        // never more chunks than items
        assert_eq!(chunk_count(3, 1), 3);
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 7, 32] {
                if chunks > n.max(1) {
                    continue;
                }
                let mut covered = 0;
                for c in 0..chunks {
                    let r = chunk_bounds(n, chunks, c);
                    assert_eq!(r.start, covered, "n={n} chunks={chunks} c={c}");
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn map_chunks_returns_in_chunk_order() {
        for threads in [1usize, 2, 5] {
            let exec = Exec::with_threads(threads);
            let (v, stats) = map_chunks(&exec, 9, |c| c * 10);
            assert_eq!(v, (0..9).map(|c| c * 10).collect::<Vec<_>>());
            assert_eq!(stats.chunks, 9);
            assert!(stats.threads_used <= threads.max(1));
        }
    }

    #[test]
    fn reduce_is_bitwise_identical_across_thread_counts() {
        // a sum whose value depends on FP association order
        let data: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 * 1e-3 + 1e-9 * i as f64)
            .collect();
        let chunks = chunk_count(data.len(), 128);
        let run = |threads| {
            let exec = Exec::with_threads(threads);
            let (sum, _) = reduce_chunks(
                &exec,
                chunks,
                |c| chunk_bounds(data.len(), chunks, c).map(|i| data[i]).sum::<f64>(),
                0.0f64,
                |a, b| a + b,
            );
            sum
        };
        let s1 = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(s1.to_bits(), run(threads).to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1usize, 4] {
            let exec = Exec::with_threads(threads);
            let mut items = vec![0usize; 100];
            let stats = for_each_mut(&exec, &mut items, |i, x| *x = i + 1);
            assert!(items.iter().enumerate().all(|(i, &x)| x == i + 1));
            assert_eq!(stats.chunks, 100);
        }
    }

    #[test]
    fn fill_chunks_writes_disjoint_ranges() {
        for threads in [1usize, 3] {
            let exec = Exec::with_threads(threads);
            let mut out = vec![0usize; 97];
            fill_chunks(&exec, &mut out, 7, |_, start, slice| {
                for (k, x) in slice.iter_mut().enumerate() {
                    *x = start + k;
                }
            });
            assert!(out.iter().enumerate().all(|(i, &x)| x == i));
        }
    }

    #[test]
    fn exec_constructors() {
        assert_eq!(Exec::serial().threads(), 1);
        assert_eq!(Exec::with_threads(0).threads(), 1);
        assert_eq!(Exec::with_threads(6).threads(), 6);
        assert!(Exec::from_env().threads() >= 1);
    }

    #[test]
    fn exec_chunk_cap_is_policy() {
        assert_eq!(Exec::serial().chunk_cap(), DEFAULT_CHUNK_CAP);
        let e = Exec::with_threads(4).with_chunk_cap(3);
        assert_eq!(e.chunk_cap(), 3);
        assert_eq!(e.threads(), 4);
        assert_eq!(Exec::with_threads(1).with_chunk_cap(0).chunk_cap(), 1);
        assert!(Exec::from_env().chunk_cap() >= 1);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let pool = ScratchPool::new();
        let a = pool.take_zeroed(64);
        assert!(a.iter().all(|&x| x == 0.0));
        assert_eq!(pool.counters(), ScratchCounters { allocs: 1, reuses: 0 });
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let mut b = pool.take_zeroed(64);
        assert_eq!(pool.counters(), ScratchCounters { allocs: 1, reuses: 1 });
        assert_eq!(b.len(), 64);
        // a dirty buffer comes back zeroed from take_zeroed ...
        b.iter_mut().for_each(|x| *x = 7.0);
        pool.put(b);
        let c = pool.take_zeroed(64);
        assert!(c.iter().all(|&x| x == 0.0));
        pool.put(c);
        // ... and with stale contents from take
        let d = pool.take(64);
        assert!(d.iter().all(|&x| x == 0.0), "was zeroed on last take");
        // different length = different shelf = fresh allocation
        let e = pool.take_zeroed(65);
        let counters = pool.counters();
        assert_eq!(counters.allocs, 2);
        assert_eq!(counters.reuses, 3);
        assert_eq!(counters.since(&ScratchCounters { allocs: 1, reuses: 1 }).allocs, 1);
        drop((d, e));
    }

    #[test]
    fn scratch_pool_is_concurrent_and_clone_is_empty() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let b = pool.take_zeroed(128);
                        pool.put(b);
                    }
                });
            }
        });
        let c = pool.counters();
        assert_eq!(c.allocs + c.reuses, 200);
        assert!(c.allocs <= 4, "at most one allocation per concurrent taker");
        let cloned = pool.clone();
        assert_eq!(cloned.pooled(), 0);
        assert_eq!(cloned.counters(), ScratchCounters::default());
    }

    #[test]
    fn empty_work_is_fine() {
        let exec = Exec::with_threads(4);
        let (v, _) = map_chunks(&exec, 1, |_| 0u32);
        assert_eq!(v, vec![0]);
        let mut empty: [u8; 0] = [];
        for_each_mut(&exec, &mut empty, |_, _| unreachable!());
        fill_chunks(&exec, &mut empty, 3, |_, _, _| unreachable!());
    }
}
