//! Bilinear interpolation on a rectilinear sample grid (paper Figure 2).
//!
//! Measurements live on a grid: x-coordinates (problem sizes) × y-coordinates
//! (process counts or network diameters), with one measured value per cell
//! corner. Queries inside the grid bilinearly interpolate; queries outside
//! linearly extrapolate from the nearest edge cell — exactly the behaviour
//! needed to predict a 32 768-core run from 2 048- and 4 096-core
//! measurements. Axes may optionally be log₂-scaled, which fits the
//! geometric spacing of HPC sweeps (16M, 32M, 64M atoms...).

/// A rectilinear grid of measurements with bilinear interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct BilinearGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major values: `z[iy * xs.len() + ix]`. Stored in log₂ space
    /// when `log_z` is set.
    z: Vec<f64>,
    log_x: bool,
    log_y: bool,
    log_z: bool,
}

fn tx(v: f64, log: bool) -> f64 {
    if log {
        v.max(f64::MIN_POSITIVE).log2()
    } else {
        v
    }
}

impl BilinearGrid {
    /// Builds a grid. `xs` and `ys` must be strictly increasing with at
    /// least 2 entries each; `z` is row-major with `ys.len()` rows of
    /// `xs.len()` values.
    ///
    /// # Panics
    /// Panics when the axes are not strictly increasing or sizes mismatch.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, z: Vec<f64>) -> Self {
        Self::with_scales(xs, ys, z, false, false, false)
    }

    /// Like [`BilinearGrid::new`] but with log₂-scaled axes (`log_x`,
    /// `log_y`) and/or log₂-scaled values (`log_z`). Log axes require
    /// strictly positive coordinates; log values require strictly positive
    /// measurements. Log values make multiplicative laws (`t ∝ N/P`)
    /// exactly linear, which is what lets coarse geometric sweeps
    /// extrapolate to paper scale accurately.
    pub fn with_scales(
        xs: Vec<f64>,
        ys: Vec<f64>,
        z: Vec<f64>,
        log_x: bool,
        log_y: bool,
        log_z: bool,
    ) -> Self {
        assert!(xs.len() >= 2 && ys.len() >= 2, "need at least a 2x2 grid");
        assert_eq!(z.len(), xs.len() * ys.len(), "value count mismatch");
        assert!(
            xs.windows(2).all(|w| w[0] < w[1]),
            "x-axis must be strictly increasing"
        );
        assert!(
            ys.windows(2).all(|w| w[0] < w[1]),
            "y-axis must be strictly increasing"
        );
        if log_x {
            assert!(xs[0] > 0.0, "log x-axis requires positive coordinates");
        }
        if log_y {
            assert!(ys[0] > 0.0, "log y-axis requires positive coordinates");
        }
        let z = if log_z {
            assert!(
                z.iter().all(|&v| v > 0.0),
                "log values require strictly positive measurements"
            );
            z.into_iter().map(f64::log2).collect()
        } else {
            z
        };
        BilinearGrid {
            xs,
            ys,
            z,
            log_x,
            log_y,
            log_z,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// True when the grid holds no values (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    fn val(&self, ix: usize, iy: usize) -> f64 {
        self.z[iy * self.xs.len() + ix]
    }

    /// Index of the cell (left corner) bracketing `v`, clamped to the edge
    /// cells so out-of-range queries extrapolate from the nearest cell.
    fn cell(coords: &[f64], v: f64) -> usize {
        if v <= coords[0] {
            return 0;
        }
        let last_cell = coords.len() - 2;
        for i in 0..=last_cell {
            if v < coords[i + 1] {
                return i;
            }
        }
        last_cell
    }

    /// Interpolated (or extrapolated) value at `(x, y)`.
    pub fn query(&self, x: f64, y: f64) -> f64 {
        let ix = Self::cell(&self.xs, x);
        let iy = Self::cell(&self.ys, y);
        let x0 = tx(self.xs[ix], self.log_x);
        let x1 = tx(self.xs[ix + 1], self.log_x);
        let y0 = tx(self.ys[iy], self.log_y);
        let y1 = tx(self.ys[iy + 1], self.log_y);
        let xq = tx(x, self.log_x);
        let yq = tx(y, self.log_y);
        let u = (xq - x0) / (x1 - x0);
        let v = (yq - y0) / (y1 - y0);
        let z00 = self.val(ix, iy);
        let z10 = self.val(ix + 1, iy);
        let z01 = self.val(ix, iy + 1);
        let z11 = self.val(ix + 1, iy + 1);
        let z =
            z00 * (1.0 - u) * (1.0 - v) + z10 * u * (1.0 - v) + z01 * (1.0 - u) * v + z11 * u * v;
        if self.log_z {
            z.exp2()
        } else {
            z
        }
    }

    /// The measured value at grid point `(ix, iy)` — for error statistics.
    pub fn sample(&self, ix: usize, iy: usize) -> (f64, f64, f64) {
        let z = self.val(ix, iy);
        let z = if self.log_z { z.exp2() } else { z };
        (self.xs[ix], self.ys[iy], z)
    }

    /// Grid shape `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.xs.len(), self.ys.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_from(f: impl Fn(f64, f64) -> f64, xs: &[f64], ys: &[f64]) -> BilinearGrid {
        let f = &f;
        let z = ys
            .iter()
            .flat_map(|&y| xs.iter().map(move |&x| f(x, y)))
            .collect();
        BilinearGrid::new(xs.to_vec(), ys.to_vec(), z)
    }

    #[test]
    fn exact_on_bilinear_functions() {
        // f(x,y) = 2x + 3y + 0.5xy is reproduced exactly inside each cell
        let f = |x: f64, y: f64| 2.0 * x + 3.0 * y + 0.5 * x * y;
        let g = grid_from(f, &[0.0, 1.0, 2.0, 4.0], &[0.0, 2.0, 4.0]);
        for &(x, y) in &[(0.5, 1.0), (1.5, 3.0), (3.0, 2.5), (0.0, 0.0), (4.0, 4.0)] {
            assert!((g.query(x, y) - f(x, y)).abs() < 1e-12, "at ({x},{y})");
        }
    }

    #[test]
    fn extrapolates_linearly_beyond_edges() {
        let f = |x: f64, y: f64| 10.0 + 2.0 * x + y;
        let g = grid_from(f, &[1.0, 2.0], &[1.0, 2.0]);
        // outside the grid in every direction
        assert!((g.query(5.0, 1.0) - f(5.0, 1.0)).abs() < 1e-12);
        assert!((g.query(1.0, 7.0) - f(1.0, 7.0)).abs() < 1e-12);
        assert!((g.query(0.0, 0.0) - f(0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn recovers_grid_points() {
        let g = grid_from(|x, y| x * 7.0 + y, &[1.0, 3.0, 9.0], &[2.0, 4.0]);
        for ix in 0..3 {
            for iy in 0..2 {
                let (x, y, z) = g.sample(ix, iy);
                assert!((g.query(x, y) - z).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn log_log_log_space_is_exact_on_power_laws() {
        // t(N, P) = c * N / P is exactly linear in (log N, log P, log t).
        let f = |n: f64, p: f64| 1e-6 * n / p;
        let xs = [1e6, 4e6, 16e6, 64e6];
        let ys = [256.0, 1024.0, 4096.0];
        let z: Vec<f64> = ys
            .iter()
            .flat_map(|&y| xs.iter().map(move |&x| f(x, y)))
            .collect();
        let lin = BilinearGrid::new(xs.to_vec(), ys.to_vec(), z.clone());
        let log = BilinearGrid::with_scales(xs.to_vec(), ys.to_vec(), z, true, true, true);
        let (xq, yq) = (8e6, 512.0); // geometric midpoints
        let truth = f(xq, yq);
        let err_lin = (lin.query(xq, yq) - truth).abs() / truth;
        let err_log = (log.query(xq, yq) - truth).abs() / truth;
        assert!(err_log < 1e-9, "power law must be exact, err {err_log}");
        assert!(err_lin > err_log);
        // extrapolation far beyond the grid stays exact for pure power laws
        let far = log.query(1e9, 32768.0);
        assert!((far - f(1e9, 32768.0)).abs() / f(1e9, 32768.0) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly positive measurements")]
    fn log_values_reject_nonpositive() {
        BilinearGrid::with_scales(
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 0.0, 1.0, 1.0],
            false,
            false,
            true,
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_axes() {
        BilinearGrid::new(vec![1.0, 1.0], vec![0.0, 1.0], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn rejects_wrong_value_count() {
        BilinearGrid::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]);
    }

    #[test]
    fn shape_and_len() {
        let g = grid_from(|x, y| x + y, &[0.0, 1.0, 2.0], &[0.0, 1.0]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
    }
}
