//! Closed-form scaling laws.
//!
//! Used to synthesize realistic measurement grids in benches/tests, and as
//! reference shapes when reasoning about kernels: good analyses (RDF)
//! strong-scale nearly linearly; the paper's MSD "does not scale and takes
//! similar times on all core counts" (§5.3.3), which is exactly an
//! Amdahl law with a large serial fraction.

/// Amdahl's-law speedup for `p` processors with serial fraction `s`.
pub fn amdahl_speedup(s: f64, p: f64) -> f64 {
    1.0 / (s + (1.0 - s) / p)
}

/// Execution time under Amdahl's law, given single-process time `t1`.
pub fn amdahl_time(t1: f64, serial_fraction: f64, procs: f64) -> f64 {
    t1 / amdahl_speedup(serial_fraction, procs)
}

/// A generic kernel-time law: `t(n, p) = a*n/p + b*log2(p) + c + d*n`.
///
/// * `a` — perfectly parallel per-element work,
/// * `b` — tree-communication cost growing with process count,
/// * `c` — fixed overhead,
/// * `d` — serial (non-scaling) per-element work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelLaw {
    /// Parallel work coefficient.
    pub a: f64,
    /// Log-p communication coefficient.
    pub b: f64,
    /// Constant overhead.
    pub c: f64,
    /// Serial per-element coefficient.
    pub d: f64,
}

impl KernelLaw {
    /// Evaluates the law at problem size `n` and process count `p`.
    pub fn time(&self, n: f64, p: f64) -> f64 {
        self.a * n / p.max(1.0) + self.b * p.max(2.0).log2() + self.c + self.d * n
    }

    /// A well-scaling kernel (RDF-like): all work parallel.
    pub fn scalable(a: f64, b: f64) -> Self {
        KernelLaw { a, b, c: 0.0, d: 0.0 }
    }

    /// A non-scaling kernel (MSD-like): dominated by serial per-element
    /// work, so time is nearly flat in `p`.
    pub fn serial_bound(d: f64, c: f64) -> Self {
        KernelLaw { a: 0.0, b: 0.0, c, d }
    }
}

/// Memory law: `m(n, p) = base + per_elem * n / p` bytes per rank, or the
/// aggregate across ranks when `aggregate` is used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryLaw {
    /// Fixed bytes per rank.
    pub base: f64,
    /// Bytes per element (elements divided evenly among ranks).
    pub per_elem: f64,
}

impl MemoryLaw {
    /// Bytes per rank at problem size `n` on `p` ranks.
    pub fn per_rank(&self, n: f64, p: f64) -> f64 {
        self.base + self.per_elem * n / p.max(1.0)
    }

    /// Aggregate bytes across all ranks.
    pub fn aggregate(&self, n: f64, p: f64) -> f64 {
        self.per_rank(n, p) * p.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_speedup(0.0, 64.0) - 64.0).abs() < 1e-9);
        // serial fraction 0.1 caps speedup at 10x
        assert!(amdahl_speedup(0.1, 1e9) < 10.0 + 1e-6);
        assert!(amdahl_time(100.0, 0.5, 4.0) > 50.0);
    }

    #[test]
    fn scalable_law_halves_with_double_procs() {
        let law = KernelLaw::scalable(1e-6, 0.0);
        let t1 = law.time(1e8, 1024.0);
        let t2 = law.time(1e8, 2048.0);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serial_law_flat_in_procs() {
        let law = KernelLaw::serial_bound(1e-8, 0.5);
        let t1 = law.time(1e8, 2048.0);
        let t2 = law.time(1e8, 32768.0);
        assert!((t1 - t2).abs() < 1e-9, "MSD-like kernels do not scale");
    }

    #[test]
    fn comm_term_grows_logarithmically() {
        let law = KernelLaw { a: 0.0, b: 1.0, c: 0.0, d: 0.0 };
        assert!((law.time(0.0, 1024.0) - 10.0).abs() < 1e-9);
        assert!((law.time(0.0, 4096.0) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn memory_law_partitions_elements() {
        let m = MemoryLaw { base: 1e6, per_elem: 8.0 };
        assert_eq!(m.per_rank(1e9, 1000.0), 1e6 + 8e6);
        assert_eq!(m.aggregate(1e9, 1000.0), (1e6 + 8e6) * 1000.0);
    }
}
