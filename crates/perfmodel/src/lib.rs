//! Performance modeling: profiling + interpolation-based prediction (§4).
//!
//! The paper feeds its optimization model with *estimates* of the time and
//! memory requirements of each analysis, obtained by measuring a few
//! (problem size × process count) points and predicting the rest with
//! **bilinear interpolation** (Figure 2). Compute time interpolates over
//! process count; communication time over the **network diameter**; memory
//! over process count. The paper reports <6 % compute-time and <8 %
//! communication-time prediction error; the integration tests of this
//! workspace reproduce that check against held-out measurements of our own
//! kernels.
//!
//! * [`interp`] — rectilinear-grid bilinear interpolation with linear
//!   extrapolation and optional log-scaled axes,
//! * [`profile`] — an `HPM_Start`/`HPM_Stop`-style region profiler with
//!   wall-clock timers and memory annotations,
//! * [`predict`] — the three-grid predictor (compute / communication /
//!   memory) used to produce [Table-1] inputs at unmeasured scales,
//! * [`stats`] — prediction-error statistics (mean/max relative error),
//! * [`laws`] — closed-form scaling laws used to synthesize workload grids
//!   in benches and tests.

pub mod interp;
pub mod laws;
pub mod predict;
pub mod profile;
pub mod stats;

pub use interp::BilinearGrid;
pub use predict::{KernelMeasurement, PerfPredictor};
pub use profile::{RegionProfiler, Stopwatch};
pub use stats::PredictionErrors;
