//! The three-grid performance predictor of §4.
//!
//! Compute time is interpolated over (problem size × process count),
//! communication time over (problem size × network diameter), and memory
//! over (problem size × process count) — precisely the x/y variable choices
//! of the paper's Figure 2.

use crate::interp::BilinearGrid;
use crate::stats::PredictionErrors;

/// One profiled run of an analysis kernel at a known scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// Problem size (atoms, cells, ...).
    pub problem_size: f64,
    /// Process count of the partition.
    pub procs: f64,
    /// Network diameter of the partition.
    pub diameter: f64,
    /// Measured compute time, seconds.
    pub compute_time: f64,
    /// Measured communication time, seconds.
    pub comm_time: f64,
    /// Measured aggregate memory, bytes.
    pub mem_bytes: f64,
}

/// Interpolation-based predictor for one analysis kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPredictor {
    compute: BilinearGrid,
    comm: BilinearGrid,
    mem: BilinearGrid,
}

fn uniques(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    v
}

impl PerfPredictor {
    /// Builds a predictor from measurements forming a complete grid:
    /// every combination of the distinct problem sizes and process counts
    /// present must have exactly one measurement. Axes are log₂-scaled,
    /// matching the geometric sweeps used in practice.
    ///
    /// # Panics
    /// Panics when the measurements do not form a complete grid or fewer
    /// than 2 distinct values exist per axis.
    pub fn from_measurements(meas: &[KernelMeasurement]) -> Self {
        let sizes = uniques(meas.iter().map(|m| m.problem_size).collect());
        let procs = uniques(meas.iter().map(|m| m.procs).collect());
        let diams = uniques(meas.iter().map(|m| m.diameter).collect());
        assert!(
            sizes.len() >= 2 && procs.len() >= 2,
            "need at least 2 distinct sizes and 2 distinct process counts"
        );
        assert_eq!(
            diams.len(),
            procs.len(),
            "each process count must map to one network diameter"
        );
        let find = |v: &[f64], x: f64| {
            v.iter()
                .position(|&u| (u - x).abs() < 1e-9)
                .expect("grid coordinate")
        };
        let n = sizes.len() * procs.len();
        let mut compute = vec![f64::NAN; n];
        let mut comm = vec![f64::NAN; n];
        let mut mem = vec![f64::NAN; n];
        for m in meas {
            let ix = find(&sizes, m.problem_size);
            let iy = find(&procs, m.procs);
            let idx = iy * sizes.len() + ix;
            assert!(
                compute[idx].is_nan(),
                "duplicate measurement at ({}, {})",
                m.problem_size,
                m.procs
            );
            compute[idx] = m.compute_time;
            comm[idx] = m.comm_time;
            mem[idx] = m.mem_bytes;
        }
        assert!(
            compute.iter().all(|v| !v.is_nan()),
            "measurements must form a complete size x procs grid"
        );
        // Compute and memory follow multiplicative laws (∝ N/P), so they
        // interpolate in log-log-log space; communication is latency-like
        // (linear in the diameter), so its value stays linear.
        let log_z_ok = |v: &[f64]| v.iter().all(|&x| x > 0.0);
        PerfPredictor {
            compute: BilinearGrid::with_scales(
                sizes.clone(),
                procs.clone(),
                compute.clone(),
                true,
                true,
                log_z_ok(&compute),
            ),
            comm: BilinearGrid::with_scales(sizes.clone(), diams, comm, true, false, false),
            mem: BilinearGrid::with_scales(sizes, procs, mem.clone(), true, true, log_z_ok(&mem)),
        }
    }

    /// Predicted compute time at `(problem_size, procs)`.
    pub fn compute_time(&self, problem_size: f64, procs: f64) -> f64 {
        self.compute.query(problem_size, procs).max(0.0)
    }

    /// Predicted communication time at `(problem_size, diameter)` — note
    /// the y-variable is the network diameter, per §4.
    pub fn comm_time(&self, problem_size: f64, diameter: f64) -> f64 {
        self.comm.query(problem_size, diameter).max(0.0)
    }

    /// Predicted total (compute + communication) kernel time.
    pub fn total_time(&self, problem_size: f64, procs: f64, diameter: f64) -> f64 {
        self.compute_time(problem_size, procs) + self.comm_time(problem_size, diameter)
    }

    /// Predicted aggregate memory at `(problem_size, procs)`.
    pub fn memory(&self, problem_size: f64, procs: f64) -> f64 {
        self.mem.query(problem_size, procs).max(0.0)
    }

    /// Validates predictions against held-out measurements; returns
    /// `(compute, comm, mem)` error statistics.
    pub fn validate(
        &self,
        holdout: &[KernelMeasurement],
    ) -> (PredictionErrors, PredictionErrors, PredictionErrors) {
        let mut ec = PredictionErrors::new();
        let mut em = PredictionErrors::new();
        let mut eb = PredictionErrors::new();
        for m in holdout {
            ec.record(self.compute_time(m.problem_size, m.procs), m.compute_time);
            em.record(self.comm_time(m.problem_size, m.diameter), m.comm_time);
            eb.record(self.memory(m.problem_size, m.procs), m.mem_bytes);
        }
        (ec, em, eb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{KernelLaw, MemoryLaw};

    /// Synthesizes a measurement grid from closed-form laws, with the
    /// network diameter growing slowly with procs (like BG/Q partitions).
    fn synth(sizes: &[f64], procs: &[f64]) -> Vec<KernelMeasurement> {
        let compute = KernelLaw::scalable(2e-6, 0.0);
        let comm = KernelLaw { a: 0.0, b: 3e-4, c: 1e-3, d: 0.0 };
        let mem = MemoryLaw { base: 1e6, per_elem: 16.0 };
        let mut out = Vec::new();
        for &p in procs {
            let diameter = 4.0 + p.log2();
            for &n in sizes {
                out.push(KernelMeasurement {
                    problem_size: n,
                    procs: p,
                    diameter,
                    compute_time: compute.time(n, p),
                    comm_time: comm.time(n, p) + 1e-5 * diameter,
                    mem_bytes: mem.aggregate(n, p),
                });
            }
        }
        out
    }

    #[test]
    fn exact_at_measured_points() {
        let meas = synth(&[1e6, 4e6, 16e6], &[256.0, 1024.0, 4096.0]);
        let pred = PerfPredictor::from_measurements(&meas);
        for m in &meas {
            assert!((pred.compute_time(m.problem_size, m.procs) - m.compute_time).abs() < 1e-9);
            assert!((pred.memory(m.problem_size, m.procs) - m.mem_bytes).abs() < 1.0);
        }
    }

    #[test]
    fn holdout_error_under_paper_bounds() {
        // Train on a coarse grid, validate on the intermediate points —
        // the paper's <6% compute / <8% comm error regime.
        let train = synth(&[1e6, 4e6, 16e6, 64e6], &[256.0, 1024.0, 4096.0, 16384.0]);
        let holdout = synth(&[2e6, 8e6, 32e6], &[512.0, 2048.0, 8192.0]);
        let pred = PerfPredictor::from_measurements(&train);
        let (ec, em, eb) = pred.validate(&holdout);
        assert!(ec.max_percent() < 6.0, "compute err {}%", ec.max_percent());
        assert!(em.max_percent() < 8.0, "comm err {}%", em.max_percent());
        // the paper quotes no error bound for memory; a sum of two power
        // terms (per-rank base + per-element) interpolates within ~12%
        assert!(eb.max_percent() < 12.0, "mem err {}%", eb.max_percent());
    }

    #[test]
    fn extrapolates_beyond_grid() {
        let meas = synth(&[1e6, 4e6], &[256.0, 1024.0]);
        let pred = PerfPredictor::from_measurements(&meas);
        // 4x larger than any measured size: prediction must stay positive
        // and grow with problem size.
        let small = pred.compute_time(4e6, 512.0);
        let big = pred.compute_time(16e6, 512.0);
        assert!(big > small && big.is_finite());
    }

    #[test]
    #[should_panic(expected = "complete size x procs grid")]
    fn incomplete_grid_rejected() {
        let mut meas = synth(&[1e6, 4e6], &[256.0, 1024.0]);
        meas.pop();
        PerfPredictor::from_measurements(&meas);
    }

    #[test]
    #[should_panic(expected = "duplicate measurement")]
    fn duplicate_point_rejected() {
        let mut meas = synth(&[1e6, 4e6], &[256.0, 1024.0]);
        let dup = meas[0];
        meas.push(dup);
        PerfPredictor::from_measurements(&meas);
    }

    #[test]
    fn predictions_clamped_non_negative() {
        // decreasing data can extrapolate below zero; the clamp guards it
        let meas = vec![
            KernelMeasurement { problem_size: 1e3, procs: 2.0, diameter: 1.0, compute_time: 1.0, comm_time: 1.0, mem_bytes: 10.0 },
            KernelMeasurement { problem_size: 2e3, procs: 2.0, diameter: 1.0, compute_time: 0.1, comm_time: 0.1, mem_bytes: 10.0 },
            KernelMeasurement { problem_size: 1e3, procs: 4.0, diameter: 2.0, compute_time: 1.0, comm_time: 1.0, mem_bytes: 10.0 },
            KernelMeasurement { problem_size: 2e3, procs: 4.0, diameter: 2.0, compute_time: 0.1, comm_time: 0.1, mem_bytes: 10.0 },
        ];
        let pred = PerfPredictor::from_measurements(&meas);
        assert!(pred.compute_time(1e6, 2.0) >= 0.0);
    }
}
