//! Region profiling — the workspace's stand-in for IBM's HPM / HPCT tools.
//!
//! The paper brackets analysis routines with `HPM_Start()` / `HPM_Stop()`
//! to measure per-region compute and communication time, and uses HPCT to
//! estimate memory. [`RegionProfiler`] provides the same bracketed-region
//! interface over `std::time::Instant`, plus explicit memory annotations
//! (Rust has no portable heap-sampling hook, and the kernels know their
//! allocation sizes exactly).

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts (or restarts) the clock.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds since start.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Restarts and returns the previous lap's seconds.
    pub fn lap(&mut self) -> f64 {
        let e = self.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Accumulated statistics for one profiled region.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionStats {
    /// Number of completed start/stop brackets.
    pub count: usize,
    /// Total wall time across brackets, seconds.
    pub total_time: f64,
    /// Largest single bracket, seconds.
    pub max_time: f64,
    /// Peak annotated memory, bytes.
    pub peak_mem: f64,
}

impl RegionStats {
    /// Mean bracket duration.
    pub fn mean_time(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_time / self.count as f64
        }
    }
}

/// HPM-style named-region profiler.
#[derive(Debug, Default)]
pub struct RegionProfiler {
    open: HashMap<String, Instant>,
    stats: HashMap<String, RegionStats>,
}

impl RegionProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a region (`HPM_Start`). Re-opening an already-open region
    /// restarts its clock.
    pub fn start(&mut self, region: &str) {
        self.open.insert(region.to_string(), Instant::now());
    }

    /// Closes a region (`HPM_Stop`) and accumulates its duration. Returns
    /// the bracket duration, or `None` when the region was never opened.
    pub fn stop(&mut self, region: &str) -> Option<f64> {
        let started = self.open.remove(region)?;
        let secs = started.elapsed().as_secs_f64();
        let s = self.stats.entry(region.to_string()).or_default();
        s.count += 1;
        s.total_time += secs;
        s.max_time = s.max_time.max(secs);
        Some(secs)
    }

    /// Times a closure as one bracket of `region` and passes its result
    /// through.
    pub fn record<T>(&mut self, region: &str, f: impl FnOnce() -> T) -> T {
        self.start(region);
        let out = f();
        self.stop(region);
        out
    }

    /// Directly accumulates an externally-measured duration (useful when a
    /// model, not a clock, produced the number).
    pub fn add_time(&mut self, region: &str, secs: f64) {
        let s = self.stats.entry(region.to_string()).or_default();
        s.count += 1;
        s.total_time += secs;
        s.max_time = s.max_time.max(secs);
    }

    /// Annotates a region's memory usage; keeps the peak.
    pub fn annotate_mem(&mut self, region: &str, bytes: f64) {
        let s = self.stats.entry(region.to_string()).or_default();
        s.peak_mem = s.peak_mem.max(bytes);
    }

    /// Statistics of one region.
    pub fn region(&self, region: &str) -> Option<&RegionStats> {
        self.stats.get(region)
    }

    /// All regions sorted by descending total time.
    pub fn report(&self) -> Vec<(&str, &RegionStats)> {
        let mut v: Vec<_> = self.stats.iter().map(|(k, s)| (k.as_str(), s)).collect();
        v.sort_by(|a, b| b.1.total_time.partial_cmp(&a.1.total_time).unwrap());
        v
    }
}

/// Busy-waits for roughly `secs` — a deterministic-ish workload for tests.
#[doc(hidden)]
pub fn spin_for(secs: f64) {
    let sw = Stopwatch::start();
    while sw.elapsed() < secs {
        std::hint::spin_loop();
    }
}

/// Converts a [`Duration`] to seconds (convenience re-export point).
pub fn duration_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        spin_for(0.005);
        let lap = sw.lap();
        assert!(lap >= 0.005, "lap {lap}");
        assert!(sw.elapsed() < lap); // restarted
    }

    #[test]
    fn bracketed_regions_accumulate() {
        let mut p = RegionProfiler::new();
        for _ in 0..3 {
            p.start("rdf");
            spin_for(0.002);
            let d = p.stop("rdf").unwrap();
            assert!(d >= 0.002);
        }
        let s = p.region("rdf").unwrap();
        assert_eq!(s.count, 3);
        assert!(s.total_time >= 0.006);
        assert!(s.max_time <= s.total_time);
        assert!(s.mean_time() > 0.0);
    }

    #[test]
    fn stop_without_start_is_none() {
        let mut p = RegionProfiler::new();
        assert!(p.stop("ghost").is_none());
    }

    #[test]
    fn record_closure_passes_value() {
        let mut p = RegionProfiler::new();
        let v = p.record("sum", || (0..100).sum::<i32>());
        assert_eq!(v, 4950);
        assert_eq!(p.region("sum").unwrap().count, 1);
    }

    #[test]
    fn memory_annotations_keep_peak() {
        let mut p = RegionProfiler::new();
        p.annotate_mem("msd", 100.0);
        p.annotate_mem("msd", 40.0);
        assert_eq!(p.region("msd").unwrap().peak_mem, 100.0);
    }

    #[test]
    fn report_sorted_by_total_time() {
        let mut p = RegionProfiler::new();
        p.add_time("small", 0.1);
        p.add_time("big", 5.0);
        p.add_time("mid", 1.0);
        let names: Vec<&str> = p.report().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
    }

    #[test]
    fn add_time_counts_brackets() {
        let mut p = RegionProfiler::new();
        p.add_time("model", 2.0);
        p.add_time("model", 3.0);
        let s = p.region("model").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_time, 5.0);
        assert_eq!(s.max_time, 3.0);
    }
}
