//! Prediction-error statistics.
//!
//! The paper validates its interpolation by reporting relative prediction
//! error (<6 % compute, <8 % communication). [`PredictionErrors`]
//! accumulates `(predicted, measured)` pairs and reports the same metrics.

/// Accumulator of relative prediction errors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionErrors {
    errors: Vec<f64>,
}

impl PredictionErrors {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(predicted, measured)` pair. Measured values of zero
    /// are skipped (relative error undefined).
    pub fn record(&mut self, predicted: f64, measured: f64) {
        if measured != 0.0 {
            self.errors.push(((predicted - measured) / measured).abs());
        }
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Mean relative error (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.errors.is_empty() {
            0.0
        } else {
            self.errors.iter().sum::<f64>() / self.errors.len() as f64
        }
    }

    /// Maximum relative error (0 when empty).
    pub fn max(&self) -> f64 {
        self.errors.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean relative error as a percentage.
    pub fn mean_percent(&self) -> f64 {
        self.mean() * 100.0
    }

    /// Max relative error as a percentage.
    pub fn max_percent(&self) -> f64 {
        self.max() * 100.0
    }

    /// True when the max error is below `percent`.
    pub fn within_percent(&self, percent: f64) -> bool {
        self.max_percent() <= percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics() {
        let mut e = PredictionErrors::new();
        e.record(11.0, 10.0); // 10%
        e.record(9.5, 10.0); // 5%
        assert_eq!(e.len(), 2);
        assert!((e.mean_percent() - 7.5).abs() < 1e-9);
        assert!((e.max_percent() - 10.0).abs() < 1e-9);
        assert!(e.within_percent(10.0));
        assert!(!e.within_percent(9.9));
    }

    #[test]
    fn zero_measured_skipped() {
        let mut e = PredictionErrors::new();
        e.record(1.0, 0.0);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), 0.0);
    }

    #[test]
    fn error_is_symmetric_in_magnitude() {
        let mut e = PredictionErrors::new();
        e.record(8.0, 10.0);
        e.record(12.0, 10.0);
        assert!((e.mean() - 0.2).abs() < 1e-12);
    }
}
