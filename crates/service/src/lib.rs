//! Scheduler-as-a-service: a multi-tenant, thread-safe solve tier.
//!
//! The paper's scheduler solves one instance for one simulation run;
//! this crate treats it as a **server** handling a heavy concurrent
//! request stream in which paper-shaped instances mostly collide. Three
//! mechanisms turn that collision rate into throughput:
//!
//! * **Canonical fingerprinting** — every incoming [`ScheduleProblem`]
//!   is normalized (analyses sorted by name) and hashed over its exact
//!   rational values via [`certify::fingerprint()`], so two users
//!   submitting the same instance in different analysis orders, or with
//!   rational-equal `f64` encodings, share one cache key.
//! * **In-flight dedup** — concurrent requests for one fingerprint
//!   coalesce onto a single solve; the leader solves, every waiter gets
//!   the shared result ([`ResponseSource::Dedup`]). An identical
//!   in-flight instance is never solved twice.
//! * **A bounded LRU of solved instances** — schedules *plus their
//!   [`insitu_types::SearchCertificate`]s*, so a
//!   hit can be re-proved. Misses with a cached near neighbor are
//!   warm-started from the neighbor's optimal counts through
//!   [`milp::solve_with_hint`] ([`ResponseSource::Warm`]).
//!
//! **The certification gate:** the fingerprint is a cache key, not a
//! proof. Every served schedule — hit, dedup fan-out, warm-started or
//! cold — is re-certified by the independent [`certify`] crate against
//! the *requester's own instance* before it leaves the service. A hash
//! collision (or cache corruption) therefore degrades to a fresh solve,
//! never to a wrong answer: [`SolveService::solve`] only ever returns
//! `PROVED` or `FEASIBLE-ONLY` replies.
//!
//! ```
//! use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
//! use service::{ServiceConfig, SolveService};
//!
//! let svc = SolveService::new(ServiceConfig::default());
//! let problem = ScheduleProblem::new(
//!     vec![AnalysisProfile::new("rdf").with_compute(0.5, GIB).with_interval(100)],
//!     ResourceConfig::from_total_threshold(1000, 30.0, 64.0 * GIB, GIB),
//! ).unwrap();
//! let first = svc.solve(&problem).unwrap();
//! let second = svc.solve(&problem).unwrap();
//! assert_eq!(second.source, insitu_types::ResponseSource::Hit);
//! assert_eq!(first.objective, second.objective);
//! ```
//!
//! See `docs/SERVICE.md` for the full API and cache contract, and
//! `service_bench` for the committed hit-rate/throughput baseline.

#![warn(missing_docs)]

mod lru;
mod server;

pub use lru::Lru;
pub use server::{CacheEntry, Reply, ServiceConfig, ServiceError, SolveService};

// re-exported so service users don't need a direct certify/types dep for
// the common assertions
pub use certify::{Fingerprint, Verdict};
pub use insitu_types::{ResponseSource, ScheduleProblem, ServiceRequest, ServiceResponse};
