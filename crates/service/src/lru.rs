//! A small, deterministic, bounded LRU map.
//!
//! Backing store is a plain `Vec` in recency order (front = least
//! recently used, back = most). Operations are `O(len)`, which is the
//! right trade for a solve cache: capacities are in the hundreds, and a
//! linear scan of 16-byte keys is cheaper than the pointer chasing of a
//! linked-list LRU — while keeping the eviction order trivially
//! deterministic (always the front element, ties impossible).

/// A bounded least-recently-used map with deterministic eviction order.
#[derive(Debug, Clone)]
pub struct Lru<K, V> {
    capacity: usize,
    /// Recency order: `entries[0]` is evicted next, `entries.last()` was
    /// touched most recently.
    entries: Vec<(K, V)>,
}

impl<K: Eq + Copy, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` entries. A capacity of
    /// zero disables caching: every insert is immediately evicted.
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            entries: Vec::with_capacity(capacity.min(1024)),
        }
    }

    /// Number of cached entries (always `<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key` and promotes it to most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        self.entries.last().map(|(_, v)| v)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, making it most-recently-used, and
    /// returns the entry this pushed out, if any: the previous value
    /// under the same key, or the least-recently-used entry when the
    /// cache was full.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        let replaced = self
            .entries
            .iter()
            .position(|(k, _)| *k == key)
            .map(|pos| self.entries.remove(pos));
        self.entries.push((key, value));
        if let Some(old) = replaced {
            return Some(old);
        }
        if self.entries.len() > self.capacity {
            return Some(self.entries.remove(0));
        }
        None
    }

    /// Entries from least- to most-recently-used (i.e. eviction order).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in eviction order (least-recently-used first).
    pub fn keys(&self) -> Vec<K> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_holds_under_churn() {
        let mut lru = Lru::new(3);
        for i in 0..100u32 {
            let evicted = lru.insert(i, i * 10);
            assert!(lru.len() <= 3, "len {} exceeds capacity", lru.len());
            if i >= 3 {
                // deterministic: always the oldest untouched key
                assert_eq!(evicted, Some((i - 3, (i - 3) * 10)));
            } else {
                assert_eq!(evicted, None);
            }
        }
        assert_eq!(lru.keys(), vec![97, 98, 99]);
    }

    #[test]
    fn get_promotes_and_changes_eviction_order() {
        let mut lru = Lru::new(3);
        for k in ["a", "b", "c"] {
            lru.insert(k, ());
        }
        assert!(lru.get(&"a").is_some()); // a becomes MRU
        assert_eq!(lru.keys(), vec!["b", "c", "a"]);
        let evicted = lru.insert("d", ());
        assert_eq!(evicted, Some(("b", ()))); // b, not a, is evicted
        assert_eq!(lru.keys(), vec!["c", "a", "d"]);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut lru = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.peek(&1), Some(&"one"));
        assert_eq!(lru.insert(3, "three"), Some((1, "one")));
    }

    #[test]
    fn replacing_a_key_returns_old_value_and_promotes() {
        let mut lru = Lru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.insert(1, "uno"), Some((1, "one")));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.keys(), vec![2, 1]);
        assert_eq!(lru.insert(3, "three"), Some((2, "two")));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.insert(1, "x"), Some((1, "x")));
        assert!(lru.is_empty());
        assert!(lru.get(&1).is_none());
    }

    #[test]
    fn eviction_sequence_is_reproducible() {
        // the same operation sequence always evicts the same keys in the
        // same order — no hashing, no randomness
        let run = || {
            let mut lru = Lru::new(2);
            let mut evictions = Vec::new();
            for op in [0u32, 1, 0, 2, 3, 1, 0] {
                if lru.get(&op).is_none() {
                    if let Some((k, _)) = lru.insert(op, ()) {
                        evictions.push(k);
                    }
                }
            }
            evictions
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 0, 2, 3]);
    }
}
