//! The solve server: fingerprint → dedup → cache → warm-start → certify.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use certify::{Fingerprint, Verdict};
use insitu_core::aggregate::{solve_aggregate_counts, solve_aggregate_counts_with_hint};
use insitu_core::placement::place_schedule;
use insitu_types::canonical::{canonicalize, from_canonical, from_canonical_schedule};
use insitu_types::json::{self, Value};
use insitu_types::{
    ResponseSource, Schedule, ScheduleProblem, SearchCertificate, ServiceRequest, ServiceResponse,
};
use milp::SolveOptions;

use crate::lru::Lru;

/// Configuration of a [`SolveService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of solved instances kept in the LRU cache.
    pub cache_capacity: usize,
    /// Solver options for fresh solves. [`SolveOptions::certificate`] is
    /// forced on regardless of this value: the cache stores certificates
    /// so hits can be re-proved. Defaults to a serial solver — the
    /// service parallelizes *across* requests, not within one.
    pub solver: SolveOptions,
    /// Warm-start cache misses from the optimal counts of their nearest
    /// cached neighbor (same analysis count). Never changes the returned
    /// optimum — an unhelpful or infeasible hint is ignored by the
    /// solver — it only prunes the search earlier.
    pub warm_start: bool,
    /// Entries retained by the always-on flight recorder (recent
    /// spans/events/counter deltas for the `flightrec/v1` post-mortem
    /// dumped on certify-reject, INVALID and solver-error paths).
    /// `0` disables the recorder entirely.
    pub flight_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 256,
            solver: SolveOptions {
                threads: 1,
                certificate: true,
                ..SolveOptions::default()
            },
            warm_start: true,
            flight_capacity: 256,
        }
    }
}

/// Why a request could not be served. Cloneable so one in-flight
/// failure can fan out to every deduplicated waiter.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The submitted problem failed [`ScheduleProblem::validate`].
    InvalidProblem(String),
    /// The underlying MILP solve failed (e.g. infeasible instance).
    Solve(String),
    /// The result failed the independent certification gate; the
    /// payload lists the certifier's complaints. Returned only when even
    /// the fallback fresh solve could not be certified.
    Certification(Vec<String>),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidProblem(e) => write!(f, "invalid problem: {e}"),
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::Certification(problems) => {
                write!(f, "certification failed: {}", problems.join("; "))
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One solved canonical instance, as stored in the cache and shared
/// with deduplicated waiters.
#[derive(Debug)]
pub struct CacheEntry {
    /// The canonical problem that was solved (analyses name-sorted).
    pub problem: ScheduleProblem,
    /// Optimal analysis counts, canonical order.
    pub counts: Vec<usize>,
    /// Optimal output counts, canonical order.
    pub output_counts: Vec<usize>,
    /// The placed optimal schedule, canonical order.
    pub schedule: Schedule,
    /// Optimal Eq. 1 objective.
    pub objective: f64,
    /// The solver's machine-checkable optimality certificate — cached so
    /// hits can be re-proved against the requester's instance.
    pub certificate: SearchCertificate,
    /// Branch-and-bound nodes of the producing solve.
    pub nodes: usize,
    /// Whether the producing solve was warm-started and the hint seeded
    /// the incumbent.
    pub hint_accepted: bool,
    /// Whether the producing solve was given a warm-start hint at all.
    pub solved_warm: bool,
}

/// One served response, in the **requester's** analysis order.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Canonical fingerprint the instance was keyed under.
    pub fingerprint: Fingerprint,
    /// How the result was produced.
    pub source: ResponseSource,
    /// Re-certification verdict against the requester's own instance:
    /// always [`Verdict::Proved`] or [`Verdict::FeasibleOnly`] — an
    /// `INVALID` result is an error, never a reply.
    pub verdict: Verdict,
    /// Optimal Eq. 1 objective.
    pub objective: f64,
    /// Optimal schedule, requester order.
    pub schedule: Schedule,
    /// Optimal analysis counts, requester order.
    pub counts: Vec<usize>,
    /// Optimal output counts, requester order.
    pub output_counts: Vec<usize>,
    /// The optimality certificate the verdict was checked against
    /// (`None` only for the trivial zero-analysis instance).
    pub certificate: Option<SearchCertificate>,
    /// Branch-and-bound nodes of the producing solve (also for hits:
    /// the nodes the *cached* solve cost).
    pub nodes: usize,
    /// Whether the producing solve's warm-start hint seeded the incumbent.
    pub hint_accepted: bool,
}

impl Reply {
    /// Renders the reply as a `service/v1` wire response.
    pub fn to_response(&self, id: u64) -> ServiceResponse {
        ServiceResponse {
            id,
            fingerprint: self.fingerprint.to_hex(),
            source: self.source,
            verdict: self.verdict.to_string(),
            objective: self.objective,
            schedule: self.schedule.clone(),
            counts: self.counts.clone(),
            output_counts: self.output_counts.clone(),
            solver_nodes: self.nodes,
            hint_accepted: self.hint_accepted,
        }
    }
}

/// An in-flight solve: the leader publishes into `slot`, waiters block
/// on `ready`.
struct InFlight {
    slot: Mutex<Option<Result<Arc<CacheEntry>, ServiceError>>>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<CacheEntry>, ServiceError>) {
        *self.slot.lock().expect("in-flight slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<CacheEntry>, ServiceError> {
        let mut guard = self.slot.lock().expect("in-flight slot poisoned");
        while guard.is_none() {
            guard = self.ready.wait(guard).expect("in-flight slot poisoned");
        }
        guard.as_ref().expect("checked above").clone()
    }
}

struct State {
    cache: Lru<Fingerprint, Arc<CacheEntry>>,
    in_flight: HashMap<Fingerprint, Arc<InFlight>>,
}

/// What the state lock told us to do for one request.
enum Action {
    Serve(Arc<CacheEntry>),
    Wait(Arc<InFlight>),
    Lead(Arc<InFlight>, Option<(Vec<usize>, Vec<usize>)>),
}

/// The multi-tenant solve server. Cheap to share: all methods take
/// `&self`, so wrap it in an [`Arc`] (or borrow it from scoped threads)
/// and call [`SolveService::solve`] from as many client threads as you
/// like.
pub struct SolveService {
    config: ServiceConfig,
    state: Mutex<State>,
    registry: Arc<obs::Registry>,
    trace: obs::TraceHandle,
    flight: Arc<obs::FlightRecorder>,
    last_dump: Mutex<Option<String>>,
    seq: AtomicU64,
}

impl SolveService {
    /// A new service with its own (empty) cache, telemetry registry and
    /// flight recorder.
    pub fn new(config: ServiceConfig) -> Self {
        let cache_capacity = config.cache_capacity;
        let flight = Arc::new(obs::FlightRecorder::with_capacity(config.flight_capacity));
        let registry = Arc::new(obs::Registry::new());
        registry.attach_flight(flight.clone());
        SolveService {
            config,
            state: Mutex::new(State {
                cache: Lru::new(cache_capacity),
                in_flight: HashMap::new(),
            }),
            registry,
            trace: obs::TraceHandle::disabled(),
            flight,
            last_dump: Mutex::new(None),
            seq: AtomicU64::new(0),
        }
    }

    /// Replaces the telemetry sinks: `service.*` counters, latency
    /// histograms and the per-solve `milp.*` stats go to `registry`,
    /// per-request `service.request` spans to `trace`. Both sinks are
    /// teed into the service's flight recorder (first recorder attached
    /// to a shared tracer wins — the tee is set once per tracer).
    pub fn with_observability(
        mut self,
        registry: Arc<obs::Registry>,
        trace: obs::TraceHandle,
    ) -> Self {
        registry.attach_flight(self.flight.clone());
        if let Some(tracer) = trace.tracer() {
            tracer.attach_flight(self.flight.clone());
        }
        self.registry = registry;
        self.trace = trace;
        self
    }

    /// The telemetry registry this service reports into.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// The always-on flight recorder (ring of recent telemetry).
    pub fn flight(&self) -> &Arc<obs::FlightRecorder> {
        &self.flight
    }

    /// The most recent `flightrec/v1` dump, if any failure path (or an
    /// explicit [`SolveService::dump_flight`]) produced one.
    pub fn last_flight_dump(&self) -> Option<String> {
        self.last_dump.lock().expect("dump slot poisoned").clone()
    }

    /// Explicit operator hook: dumps the flight recorder with the
    /// current registry snapshot attached, stores it as the last dump,
    /// and returns it.
    pub fn dump_flight(&self, reason: &str) -> String {
        self.flight_dump(reason, None, None)
    }

    fn flight_dump(
        &self,
        reason: &str,
        fp: Option<Fingerprint>,
        verdict: Option<&str>,
    ) -> String {
        let snap = self.registry.snapshot();
        let hex = fp.map(|f| f.to_hex());
        let dump = self.flight.dump(reason, hex.as_deref(), verdict, Some(&snap));
        *self.last_dump.lock().expect("dump slot poisoned") = Some(dump.clone());
        dump
    }

    /// Solves one instance, in the caller's own analysis order.
    ///
    /// Thread-safe; blocks only while an identical instance is already
    /// being solved by another caller (and then shares that solve's
    /// result). Every reply is re-certified against `problem` before it
    /// is returned — see the crate docs for the gate.
    ///
    /// The request gets a deterministic [`obs::TraceContext`] derived
    /// from its canonical fingerprint and an internal arrival sequence
    /// number; use [`SolveService::solve_seq`] to supply the sequence
    /// yourself when ids must reproduce across runs (as
    /// [`SolveService::process_batch`] does).
    pub fn solve(&self, problem: &ScheduleProblem) -> Result<Reply, ServiceError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.solve_seq(problem, seq)
    }

    /// [`SolveService::solve`] with a caller-chosen request sequence
    /// number. The request's trace context is
    /// `TraceContext::derive(fingerprint, seq)` — no clocks, no
    /// randomness — so the same `(problem, seq)` pair yields the same
    /// `trace_id` at any worker count.
    pub fn solve_seq(&self, problem: &ScheduleProblem, seq: u64) -> Result<Reply, ServiceError> {
        let start = Instant::now();
        problem
            .validate()
            .map_err(|e| ServiceError::InvalidProblem(e.to_string()))?;
        self.registry.add("service.requests", 1);
        let fp = certify::fingerprint(problem);
        let ctx = obs::TraceContext::derive(fp.0, seq);
        let _ctx_guard = ctx.enter();
        let mut span = self.trace.span("service.request");
        span.tag("fingerprint", fp.to_hex());
        span.tag("seq", seq as i64);

        let result = self.solve_in_context(problem, fp, &mut span);
        match &result {
            Ok(reply) => {
                let class = match reply.source {
                    ResponseSource::Hit => "hit",
                    ResponseSource::Dedup => "dedup",
                    ResponseSource::Warm => "warm",
                    ResponseSource::Fresh => "fresh",
                };
                span.tag("class", class);
                self.registry
                    .observe_hist(latency_hist_name(class), start.elapsed().as_secs_f64());
                // wall-clock-free companion: the objective distribution
                // depends only on the request multiset, so its snapshot
                // is bitwise identical at any worker count
                self.registry
                    .observe_hist("service.request.objective", reply.objective);
            }
            Err(ServiceError::Solve(_)) => {
                self.flight_dump("solver-error", Some(fp), None);
            }
            Err(ServiceError::Certification(_)) => {
                self.flight_dump("invalid-verdict", Some(fp), Some("INVALID"));
            }
            Err(ServiceError::InvalidProblem(_)) => {}
        }
        result
    }

    /// The request body, run inside the request's trace context.
    fn solve_in_context(
        &self,
        problem: &ScheduleProblem,
        fp: Fingerprint,
        span: &mut obs::SpanGuard<'_>,
    ) -> Result<Reply, ServiceError> {
        let (canon, perm) = canonicalize(problem);

        if canon.is_empty() {
            // the trivial instance: nothing to schedule, nothing to cache
            span.tag("source", "fresh");
            return Ok(Reply {
                fingerprint: fp,
                source: ResponseSource::Fresh,
                verdict: Verdict::FeasibleOnly,
                objective: 0.0,
                schedule: Schedule::empty(0),
                counts: Vec::new(),
                output_counts: Vec::new(),
                certificate: None,
                nodes: 0,
                hint_accepted: false,
            });
        }

        let action = {
            let mut state = self.state.lock().expect("service state poisoned");
            if let Some(entry) = state.cache.get(&fp) {
                self.registry.add("service.hits", 1);
                Action::Serve(entry.clone())
            } else if let Some(in_flight) = state.in_flight.get(&fp) {
                self.registry.add("service.dedup_waits", 1);
                Action::Wait(in_flight.clone())
            } else {
                self.registry.add("service.misses", 1);
                let hint = if self.config.warm_start {
                    nearest_neighbor(&state.cache, &canon)
                } else {
                    None
                };
                let in_flight = Arc::new(InFlight::new());
                state.in_flight.insert(fp, in_flight.clone());
                Action::Lead(in_flight, hint)
            }
        };

        let (entry, source) = match action {
            Action::Serve(entry) => (entry, ResponseSource::Hit),
            Action::Wait(in_flight) => (in_flight.wait()?, ResponseSource::Dedup),
            Action::Lead(in_flight, hint) => {
                let result = self.solve_fresh(&canon, hint.as_ref());
                {
                    let mut state = self.state.lock().expect("service state poisoned");
                    state.in_flight.remove(&fp);
                    if let Ok(entry) = &result {
                        if let Some((evicted_fp, _)) = state.cache.insert(fp, entry.clone()) {
                            if evicted_fp != fp {
                                self.registry.add("service.evictions", 1);
                            }
                        }
                    }
                }
                in_flight.publish(result.clone());
                let entry = result?;
                let source = if entry.solved_warm {
                    ResponseSource::Warm
                } else {
                    ResponseSource::Fresh
                };
                (entry, source)
            }
        };
        span.tag("source", source.as_str());

        match self.serve(problem, &perm, fp, &entry, source) {
            Ok(reply) => Ok(reply),
            Err(ServiceError::Certification(_))
                if matches!(source, ResponseSource::Hit | ResponseSource::Dedup) =>
            {
                // the certification gate tripped: the cached entry does not
                // certify against *this* requester's instance (fingerprint
                // collision or cache corruption). Degrade to a fresh solve
                // of the requester's own canonical form and replace the
                // poisoned entry.
                self.registry.add("service.certify_rejects", 1);
                span.tag("certify_reject", true);
                // leave the post-mortem before the state changes: the ring
                // still holds the events leading up to the reject
                self.flight_dump("certify-reject", Some(fp), Some("INVALID"));
                let entry = self.solve_fresh(&canon, None)?;
                let mut state = self.state.lock().expect("service state poisoned");
                state.cache.insert(fp, entry.clone());
                drop(state);
                self.serve(problem, &perm, fp, &entry, ResponseSource::Fresh)
            }
            Err(e) => Err(e),
        }
    }

    /// Solves a batch, fanning the requests over `workers` service
    /// threads with dynamic work claiming (reusing [`parallel::Exec`]'s
    /// thread accounting). Results come back in request order.
    pub fn process_batch(
        &self,
        problems: &[ScheduleProblem],
        workers: usize,
    ) -> Vec<Result<Reply, ServiceError>> {
        let exec = parallel::Exec::with_threads(workers);
        let mut slots: Vec<Option<Result<Reply, ServiceError>>> = vec![None; problems.len()];
        // the stream index is the request's sequence number, so trace ids
        // are identical at any worker count (claiming order is not)
        parallel::for_each_mut(&exec, &mut slots, |i, slot| {
            *slot = Some(self.solve_seq(&problems[i], i as u64));
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("for_each_mut visits every slot"))
            .collect()
    }

    /// Parses a `service/v1` request, solves it, and renders the
    /// `service/v1` response (or an error object carrying the request id
    /// when one could be parsed).
    pub fn handle_json(&self, request: &str) -> String {
        match json::from_str::<ServiceRequest>(request) {
            Ok(req) => match self.solve(&req.problem) {
                Ok(reply) => json::to_string(&reply.to_response(req.id)),
                Err(e) => error_json(Some(req.id), &e.to_string()),
            },
            Err(e) => error_json(None, &e.to_string()),
        }
    }

    /// Solves the canonical instance cold (or warm-started from a
    /// neighbor's counts) and certifies the result before anyone sees it.
    fn solve_fresh(
        &self,
        canon: &ScheduleProblem,
        hint: Option<&(Vec<usize>, Vec<usize>)>,
    ) -> Result<Arc<CacheEntry>, ServiceError> {
        let mut opts = self.config.solver.clone();
        opts.certificate = true;
        // the solver opens its own `milp.solve` span on this handle,
        // nested under the request span and carrying its trace context
        opts.trace = self.trace.clone();
        let mut solve_span = self.trace.span("service.solve");
        let agg = match hint {
            Some((counts, output_counts)) => {
                self.registry.add("service.warm_starts", 1);
                solve_aggregate_counts_with_hint(canon, &opts, counts, output_counts)
            }
            None => solve_aggregate_counts(canon, &opts),
        }
        .map_err(|e| ServiceError::Solve(e.to_string()))?;
        self.registry.add("service.solves", 1);
        agg.stats.export_into(&self.registry);
        solve_span.tag("nodes", agg.nodes);
        solve_span.tag("warm", hint.is_some());
        drop(solve_span);

        let schedule = place_schedule(canon, &agg.counts, &agg.output_counts);
        let certificate = agg
            .stats
            .certificate
            .clone()
            .ok_or_else(|| ServiceError::Solve("solver returned no certificate".into()))?;
        // leader-side gate: a result that does not certify against the
        // canonical instance never reaches the cache or any waiter
        let cert = {
            let mut cspan = self.trace.span("service.certify");
            let cert = certify::certify(canon, &schedule, Some(&certificate));
            cspan.tag("verdict", cert.verdict.to_string());
            cert
        };
        if cert.verdict == Verdict::Invalid {
            return Err(ServiceError::Certification(cert.problems));
        }
        Ok(Arc::new(CacheEntry {
            problem: canon.clone(),
            counts: agg.counts,
            output_counts: agg.output_counts,
            schedule,
            objective: agg.objective,
            certificate,
            nodes: agg.nodes,
            hint_accepted: agg.stats.hint_accepted,
            solved_warm: hint.is_some(),
        }))
    }

    /// Permutes a canonical entry into the requester's order and passes
    /// it through the certification gate.
    fn serve(
        &self,
        problem: &ScheduleProblem,
        perm: &[usize],
        fp: Fingerprint,
        entry: &Arc<CacheEntry>,
        source: ResponseSource,
    ) -> Result<Reply, ServiceError> {
        let schedule = from_canonical_schedule(&entry.schedule, perm);
        let cert = {
            let mut cspan = self.trace.span("service.certify");
            let cert = certify::certify(problem, &schedule, Some(&entry.certificate));
            cspan.tag("verdict", cert.verdict.to_string());
            cert
        };
        if cert.verdict == Verdict::Invalid {
            return Err(ServiceError::Certification(cert.problems));
        }
        Ok(Reply {
            fingerprint: fp,
            source,
            verdict: cert.verdict,
            objective: entry.objective,
            schedule,
            counts: from_canonical(&entry.counts, perm),
            output_counts: from_canonical(&entry.output_counts, perm),
            certificate: Some(entry.certificate.clone()),
            nodes: entry.nodes,
            hint_accepted: entry.hint_accepted,
        })
    }

    /// Plants `entry` in the cache under `fp`, bypassing the solve path.
    /// Test-only: this is how the stress suite forces a certify-reject
    /// (cache an entry that cannot certify against the fingerprint's
    /// real instance) to exercise the fallback and the flight dump.
    #[doc(hidden)]
    pub fn inject_cache_entry_for_test(&self, fp: Fingerprint, entry: Arc<CacheEntry>) {
        self.state
            .lock()
            .expect("service state poisoned")
            .cache
            .insert(fp, entry);
    }
}

/// Registry histogram name for one outcome class.
fn latency_hist_name(class: &str) -> &'static str {
    match class {
        "hit" => "service.request.latency_s.hit",
        "dedup" => "service.request.latency_s.dedup",
        "warm" => "service.request.latency_s.warm",
        _ => "service.request.latency_s.fresh",
    }
}

/// Scale-free distance between two field values; `0` for identical,
/// bounded by `1` per field.
fn rel(x: f64, y: f64) -> f64 {
    if x == y {
        return 0.0;
    }
    if !x.is_finite() || !y.is_finite() {
        return 1.0;
    }
    (x - y).abs() / (1.0 + x.abs() + y.abs())
}

/// Structural distance between two canonical instances with the same
/// analysis count; `None` when the shapes are incomparable.
fn distance(a: &ScheduleProblem, b: &ScheduleProblem) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let (ra, rb) = (&a.resources, &b.resources);
    let mut d = rel(ra.steps as f64, rb.steps as f64)
        + rel(ra.step_threshold, rb.step_threshold)
        + rel(ra.mem_threshold, rb.mem_threshold)
        + rel(ra.io_bandwidth, rb.io_bandwidth);
    for (x, y) in a.analyses.iter().zip(&b.analyses) {
        if x.name != y.name {
            d += 1.0;
        }
        d += rel(x.fixed_time, y.fixed_time)
            + rel(x.step_time, y.step_time)
            + rel(x.compute_time, y.compute_time)
            + rel(x.output_time, y.output_time)
            + rel(x.fixed_mem, y.fixed_mem)
            + rel(x.step_mem, y.step_mem)
            + rel(x.compute_mem, y.compute_mem)
            + rel(x.output_mem, y.output_mem)
            + rel(x.weight, y.weight)
            + rel(x.min_interval as f64, y.min_interval as f64)
            + rel(x.output_every as f64, y.output_every as f64);
    }
    Some(d)
}

/// The optimal counts of the cached instance nearest to `canon`
/// (most-recently-used wins ties), for warm-starting a miss.
fn nearest_neighbor(
    cache: &Lru<Fingerprint, Arc<CacheEntry>>,
    canon: &ScheduleProblem,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut best: Option<(f64, &Arc<CacheEntry>)> = None;
    // MRU → LRU, strict `<`: among equal distances the hottest entry wins
    for (_, entry) in cache.iter().rev() {
        if let Some(d) = distance(canon, &entry.problem) {
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, entry));
            }
        }
    }
    best.map(|(_, e)| (e.counts.clone(), e.output_counts.clone()))
}

fn error_json(id: Option<u64>, message: &str) -> String {
    let mut m = std::collections::BTreeMap::new();
    m.insert(
        "schema".to_string(),
        Value::String(insitu_types::SERVICE_SCHEMA.into()),
    );
    if let Some(id) = id {
        m.insert("id".to_string(), Value::Number(id as f64));
    }
    m.insert("error".to_string(), Value::String(message.into()));
    Value::Object(m).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_types::{AnalysisProfile, ResourceConfig};

    fn problem(names_ct: &[(&str, f64)]) -> ScheduleProblem {
        ScheduleProblem::new(
            names_ct
                .iter()
                .map(|&(n, ct)| {
                    AnalysisProfile::new(n)
                        .with_compute(ct, 0.0)
                        .with_interval(10)
                        .with_output(0.1, 0.0, 1)
                })
                .collect(),
            ResourceConfig::from_total_threshold(100, 8.0, 1e9, 1e9),
        )
        .unwrap()
    }

    #[test]
    fn hit_after_miss_and_identical_results() {
        let svc = SolveService::new(ServiceConfig::default());
        let p = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        let a = svc.solve(&p).unwrap();
        let b = svc.solve(&p).unwrap();
        assert_eq!(a.source, ResponseSource::Fresh);
        assert_eq!(b.source, ResponseSource::Hit);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.objective, b.objective);
        assert_ne!(a.verdict, Verdict::Invalid);
        let snap = svc.registry().snapshot();
        assert_eq!(snap.counter("service.requests"), Some(2));
        assert_eq!(snap.counter("service.hits"), Some(1));
        assert_eq!(snap.counter("service.solves"), Some(1));
    }

    #[test]
    fn permuted_request_hits_and_gets_its_own_order_back() {
        let svc = SolveService::new(ServiceConfig::default());
        let p = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        let q = problem(&[("msd", 1.0), ("rdf", 0.5)]);
        let a = svc.solve(&p).unwrap();
        let b = svc.solve(&q).unwrap();
        assert_eq!(b.source, ResponseSource::Hit);
        assert_eq!(a.fingerprint, b.fingerprint);
        // same schedules, each in its requester's order
        assert_eq!(a.schedule.per_analysis[0], b.schedule.per_analysis[1]);
        assert_eq!(a.schedule.per_analysis[1], b.schedule.per_analysis[0]);
        assert_eq!(a.counts[0], b.counts[1]);
        // and each certifies against its own instance
        let cert = certify::certify(&q, &b.schedule, b.certificate.as_ref());
        assert_eq!(cert.verdict, Verdict::Proved);
    }

    #[test]
    fn near_miss_is_warm_started_and_optimum_matches_cold() {
        let cold = SolveService::new(ServiceConfig {
            warm_start: false,
            ..ServiceConfig::default()
        });
        let warm = SolveService::new(ServiceConfig::default());
        let base = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        let near = problem(&[("rdf", 0.55), ("msd", 1.0)]);
        warm.solve(&base).unwrap();
        let w = warm.solve(&near).unwrap();
        assert_eq!(w.source, ResponseSource::Warm);
        let c = cold.solve(&near).unwrap();
        assert_eq!(c.source, ResponseSource::Fresh);
        assert_eq!(w.objective, c.objective);
        assert_eq!(w.schedule, c.schedule);
        let snap = warm.registry().snapshot();
        assert_eq!(snap.counter("service.warm_starts"), Some(1));
    }

    #[test]
    fn invalid_problem_is_rejected() {
        let svc = SolveService::new(ServiceConfig::default());
        let mut p = problem(&[("a", 0.5)]);
        p.analyses.push(p.analyses[0].clone()); // duplicate name
        assert!(matches!(
            svc.solve(&p),
            Err(ServiceError::InvalidProblem(_))
        ));
    }

    #[test]
    fn empty_problem_served_without_caching() {
        let svc = SolveService::new(ServiceConfig::default());
        let p = ScheduleProblem::new(Vec::new(), ResourceConfig::default()).unwrap();
        let r = svc.solve(&p).unwrap();
        assert_eq!(r.verdict, Verdict::FeasibleOnly);
        assert_eq!(r.objective, 0.0);
        assert!(r.certificate.is_none());
        assert_eq!(svc.registry().snapshot().counter("service.solves"), None);
    }

    #[test]
    fn json_round_trip_through_the_service() {
        let svc = SolveService::new(ServiceConfig::default());
        let req = ServiceRequest {
            id: 9,
            problem: problem(&[("rdf", 0.5)]),
        };
        let out = svc.handle_json(&json::to_string(&req));
        let resp: ServiceResponse = json::from_str(&out).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.source, ResponseSource::Fresh);
        assert_eq!(resp.verdict, "PROVED");
        assert_eq!(resp.counts.len(), 1);

        let err = svc.handle_json("{\"schema\":\"service/v1\"}");
        assert!(err.contains("\"error\""));
    }

    #[test]
    fn eviction_is_counted_and_capacity_respected() {
        let svc = SolveService::new(ServiceConfig {
            cache_capacity: 1,
            warm_start: false,
            ..ServiceConfig::default()
        });
        svc.solve(&problem(&[("a", 0.5)])).unwrap();
        svc.solve(&problem(&[("b", 0.7)])).unwrap(); // evicts a
        let r = svc.solve(&problem(&[("a", 0.5)])).unwrap(); // miss again
        assert_eq!(r.source, ResponseSource::Fresh);
        let snap = svc.registry().snapshot();
        assert_eq!(snap.counter("service.evictions"), Some(2));
        assert_eq!(snap.counter("service.solves"), Some(3));
    }

    #[test]
    fn batch_matches_sequential() {
        let svc = SolveService::new(ServiceConfig::default());
        let problems: Vec<_> = (0..6)
            .map(|i| problem(&[("rdf", 0.5 + 0.1 * (i % 3) as f64)]))
            .collect();
        let batch = svc.process_batch(&problems, 3);
        let sequential = SolveService::new(ServiceConfig::default());
        for (p, r) in problems.iter().zip(&batch) {
            let r = r.as_ref().unwrap();
            let s = sequential.solve(p).unwrap();
            assert_eq!(r.objective, s.objective);
            assert_ne!(r.verdict, Verdict::Invalid);
        }
    }

    #[test]
    fn latency_and_objective_histograms_register_by_class() {
        let svc = SolveService::new(ServiceConfig::default());
        let p = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        svc.solve(&p).unwrap(); // fresh
        svc.solve(&p).unwrap(); // hit
        let snap = svc.registry().snapshot();
        assert_eq!(
            snap.hist("service.request.latency_s.fresh").unwrap().count,
            1
        );
        assert_eq!(snap.hist("service.request.latency_s.hit").unwrap().count, 1);
        let obj = snap.hist("service.request.objective").unwrap();
        assert_eq!(obj.count, 2);
        // both requests returned the same objective -> degenerate hist
        assert_eq!(obj.min, obj.max);
    }

    #[test]
    fn trace_ids_are_deterministic_and_separate_requests() {
        let run = |workers: usize| {
            let tracer = Arc::new(obs::Tracer::with_capacity(4096));
            let svc = SolveService::new(ServiceConfig::default()).with_observability(
                Arc::new(obs::Registry::new()),
                obs::TraceHandle::new(tracer.clone()),
            );
            let problems: Vec<_> = (0..4)
                .map(|i| problem(&[("rdf", 0.5 + 0.1 * i as f64)]))
                .collect();
            for r in svc.process_batch(&problems, workers) {
                r.unwrap();
            }
            tracer.timeline()
        };
        let serial = run(1);
        let parallel = run(4);
        // every span carries a trace id, and the id sets are bitwise
        // identical across worker counts (fingerprint + stream index,
        // never arrival order)
        assert!(serial.spans.iter().all(|s| s.trace_id.is_some()));
        assert_eq!(serial.trace_ids().len(), 4);
        assert_eq!(serial.trace_ids(), parallel.trace_ids());
        // the request span and its nested solve/certify spans share a lane
        let req = serial.spans_named("service.request").next().unwrap();
        let kids = serial.children_of(req.id);
        assert!(!kids.is_empty());
        assert!(kids.iter().all(|k| k.trace_id == req.trace_id));
        assert!(serial.spans_named("milp.solve").next().is_some());
        assert!(serial.spans_named("service.certify").next().is_some());
    }

    #[test]
    fn forced_certify_reject_dumps_flightrec_and_recovers() {
        let tracer = Arc::new(obs::Tracer::with_capacity(1024));
        let svc = SolveService::new(ServiceConfig::default()).with_observability(
            Arc::new(obs::Registry::new()),
            obs::TraceHandle::new(tracer.clone()),
        );
        let target = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        let decoy = problem(&[("a", 0.9), ("b", 1.3), ("c", 0.2)]);
        svc.solve(&decoy).unwrap();
        // plant the decoy's entry under the target's fingerprint: the next
        // target request hits, fails the certification gate, and must fall
        // back to a fresh solve
        let planted = {
            let d = svc.solve(&decoy).unwrap();
            assert_eq!(d.source, ResponseSource::Hit);
            Arc::new(CacheEntry {
                problem: decoy.clone(),
                counts: vec![0; 3],
                output_counts: vec![0; 3],
                schedule: Schedule::empty(3),
                objective: d.objective,
                certificate: d.certificate.clone().unwrap(),
                nodes: d.nodes,
                hint_accepted: false,
                solved_warm: false,
            })
        };
        let fp = certify::fingerprint(&target);
        svc.inject_cache_entry_for_test(fp, planted);
        assert!(svc.last_flight_dump().is_none());
        let r = svc.solve(&target).unwrap();
        // recovered: fresh solve, valid verdict
        assert_eq!(r.source, ResponseSource::Fresh);
        assert_ne!(r.verdict, Verdict::Invalid);
        let snap = svc.registry().snapshot();
        assert_eq!(snap.counter("service.certify_rejects"), Some(1));
        // and the reject left a parseable post-mortem naming the request
        let dump = svc.last_flight_dump().unwrap();
        let v = Value::parse(&dump).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("flightrec/v1"));
        assert_eq!(
            v.get("reason").and_then(Value::as_str),
            Some("certify-reject")
        );
        assert_eq!(
            v.get("fingerprint").and_then(Value::as_str),
            Some(fp.to_hex().as_str())
        );
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("INVALID"));
        assert!(!v.get("entries").and_then(Value::as_array).unwrap().is_empty());
        // explicit hook also works and replaces the stored dump
        let manual = svc.dump_flight("operator");
        assert!(manual.contains("\"reason\":\"operator\""));
        assert_eq!(svc.last_flight_dump().unwrap(), manual);
    }

    #[test]
    fn distance_prefers_closer_instances() {
        let a = problem(&[("rdf", 0.5)]);
        let near = problem(&[("rdf", 0.51)]);
        let far = problem(&[("rdf", 3.0)]);
        let other = problem(&[("rdf", 0.5), ("msd", 1.0)]);
        assert_eq!(distance(&a, &a), Some(0.0));
        assert!(distance(&a, &near).unwrap() < distance(&a, &far).unwrap());
        assert_eq!(distance(&a, &other), None);
    }
}
