//! Co-scheduling (the paper's "future work" extension): choose, per
//! analysis, between running in-situ (blocking the simulation) and
//! in-transit (shipping data to staging nodes), then verify the decision
//! with a discrete-event replay that models the overlap.
//!
//! ```sh
//! cargo run -p examples --bin cosched
//! ```

use insitu_core::cosched::{solve_cosched, CoschedProblem, Site, StagingConfig, TransferProfile};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
use machine::event::{replay, ReplayCost, ReplaySite};
use milp::SolveOptions;

fn main() {
    // Two analyses on a 1000-step run with a 60 s in-situ budget: the
    // histogram is cheap in-situ; the clustering analysis costs 12 s per
    // step in-situ but only ~1 s of simulation time to ship (4 GB over
    // a fat link), with 30 s of (overlapped) staging compute.
    let base = ScheduleProblem::new(
        vec![
            AnalysisProfile::new("histograms")
                .with_compute(0.8, 0.5 * GIB)
                .with_output(0.2, 0.1 * GIB, 1)
                .with_interval(100),
            AnalysisProfile::new("clustering")
                .with_compute(12.0, 4.0 * GIB)
                .with_output(1.0, 0.5 * GIB, 1)
                .with_interval(100)
                .with_weight(2.0),
        ],
        ResourceConfig::from_total_threshold(1000, 60.0, 64.0 * GIB, GIB),
    )
    .expect("valid problem");
    let problem = CoschedProblem {
        base,
        transfers: vec![
            TransferProfile {
                input_bytes: 0.2e9,
                staging_compute_time: 2.0,
                staging_mem: 1e9,
            },
            TransferProfile {
                input_bytes: 4e9,
                staging_compute_time: 30.0,
                staging_mem: 16e9,
            },
        ],
        staging: StagingConfig {
            network_bw: 5e9,
            transfer_overhead: 0.05,
            time_budget: 600.0,
            mem_capacity: 128e9,
        },
    };
    let rec = solve_cosched(
        &problem,
        &SolveOptions {
            abs_gap: 0.999,
            ..Default::default()
        },
    )
    .expect("solvable");

    println!("co-schedule (objective {}):", rec.objective);
    for (i, a) in problem.base.analyses.iter().enumerate() {
        println!(
            "  {:<12} {:>2}x  {:?}",
            a.name, rec.counts[i], rec.sites[i]
        );
    }
    println!(
        "simulation-side time {:.1} s (budget 60 s); staging compute {:.1} s",
        rec.sim_side_time, rec.staging_time
    );

    // --- DES replay: quantify the overlap ---
    let sim_step_time = 0.9; // seconds per simulation step
    let costs: Vec<ReplayCost> = problem
        .base
        .analyses
        .iter()
        .zip(&rec.sites)
        .zip(&problem.transfers)
        .map(|((a, site), t)| match site {
            Site::InSitu => ReplayCost {
                site: ReplaySite::InSitu,
                step_time: a.step_time,
                compute_time: a.compute_time,
                output_time: a.output_time,
                transfer_time: 0.0,
            },
            Site::InTransit => ReplayCost {
                site: ReplaySite::InTransit,
                step_time: a.step_time,
                compute_time: t.staging_compute_time,
                output_time: a.output_time,
                transfer_time: problem.staging.transfer_time(t.input_bytes),
            },
        })
        .collect();
    let cosched_run = replay(&rec.schedule, 1000, sim_step_time, &costs, 4);
    // counterfactual: force everything in-situ at the same frequencies
    let insitu_costs: Vec<ReplayCost> = problem
        .base
        .analyses
        .iter()
        .map(|a| ReplayCost {
            site: ReplaySite::InSitu,
            step_time: a.step_time,
            compute_time: a.compute_time,
            output_time: a.output_time,
            transfer_time: 0.0,
        })
        .collect();
    let insitu_run = replay(&rec.schedule, 1000, sim_step_time, &insitu_costs, 1);

    println!("\ndiscrete-event replay (same frequencies):");
    println!(
        "  all in-situ   : makespan {:.1} s (analysis blocks {:.1} s)",
        insitu_run.makespan(),
        insitu_run.sim_analysis_busy
    );
    println!(
        "  co-scheduled  : makespan {:.1} s (sim blocked only {:.1} s; staging busy {:.1} s, queue peak {})",
        cosched_run.makespan(),
        cosched_run.sim_analysis_busy,
        cosched_run.staging_busy,
        cosched_run.staging_queue_peak
    );
    println!(
        "  overlap saves {:.1} s end-to-end",
        insitu_run.makespan() - cosched_run.makespan()
    );
}
