//! End-to-end in-situ analysis of a *live* molecular dynamics run.
//!
//! Profiles the water+ions analyses (A1–A4) on the actual mini-LAMMPS
//! engine, asks the advisor for a schedule under a 10 % overhead budget,
//! executes the coupled run **with the unified tracing layer attached**,
//! and verifies the measured overhead against the threshold — the full
//! loop the paper proposes, at laptop scale. The traced run additionally
//! produces:
//!
//! * `target/md_insitu.timeline.json` — the `obs/timeline/v1` document
//!   (schema in `EXPERIMENTS.md`),
//! * `target/md_insitu.chrome.json` — the same timeline as Chrome
//!   trace events, loadable in `chrome://tracing` / `ui.perfetto.dev`,
//! * a predicted-vs-measured drift report (Eq. 2–4 replayed exactly by
//!   `certify` against the measured span timeline),
//! * one `obs::Registry` snapshot merging solver, kernel and coupler
//!   telemetry.
//!
//! ```sh
//! cargo run -p examples --bin md_insitu --release
//! ```

use insitu_core::adaptive::AdaptiveConfig;
use insitu_core::attribution::{attribute, attribute_with_predicted};
use insitu_core::runtime::{run_coupled_adaptive, run_coupled_traced, Analysis, CouplerConfig};
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
use mdsim::analysis::{a1_hydronium_rdf, a2_ion_rdf, a3_vacf, a4_msd};
use mdsim::{water_ions, BuilderParams, System};
use perfmodel::Stopwatch;
use std::sync::Arc;

const ATOMS: usize = 8_000;
const STEPS: usize = 200;
const ITV: usize = 20;

/// Profile one analysis by timing a single trial execution.
fn profile<A: Analysis<System>>(a: &mut A, sys: &System, mem: f64, itv: usize) -> AnalysisProfile {
    a.setup(sys);
    let sw = Stopwatch::start();
    a.analyze(sys);
    let ct = sw.elapsed();
    let sw = Stopwatch::start();
    a.output(sys);
    let ot = sw.elapsed();
    AnalysisProfile::new(a.name())
        .with_compute(ct, mem)
        .with_output(ot.max(1e-6), mem / 4.0, 1)
        .with_interval(itv)
}

fn main() {
    println!("building {ATOMS}-atom water+ions system...");
    let mut sys = water_ions(&BuilderParams {
        n_particles: ATOMS,
        ..Default::default()
    });
    for _ in 0..3 {
        sys.step();
    }

    // --- profile the four analyses on the real system ---
    let profiles = {
        let mut a1 = a1_hydronium_rdf();
        let mut a2 = a2_ion_rdf();
        let mut a3 = a3_vacf(16);
        let mut a4 = a4_msd();
        for _ in 0..16 {
            a3.record(&sys);
        }
        vec![
            profile(&mut a1, &sys, 8e6, ITV),
            profile(&mut a2, &sys, 8e6, ITV),
            profile(&mut a3, &sys, 16e6, ITV),
            profile(&mut a4, &sys, 32e6, ITV),
        ]
    };
    for p in &profiles {
        println!(
            "  {:<22} ct = {:>9.3} ms   ot = {:>9.3} ms",
            p.name,
            p.compute_time * 1e3,
            p.output_time * 1e3
        );
    }

    // --- measure the simulation step time, set a 10% budget ---
    let sw = Stopwatch::start();
    for _ in 0..5 {
        sys.step();
    }
    let step_time = sw.elapsed() / 5.0;
    let sim_time = step_time * STEPS as f64;
    println!("\nsimulation: {STEPS} steps x {:.2} ms = {:.2} s", step_time * 1e3, sim_time);

    let problem = ScheduleProblem::new(
        profiles,
        ResourceConfig::from_overhead_fraction(STEPS, sim_time, 0.10, 2.0 * GIB, GIB),
    )
    .expect("valid problem");
    let rec = Advisor::new(AdvisorOptions::default())
        .recommend(&problem)
        .expect("solvable");
    println!("\nrecommended schedule (10% budget = {:.2} s):", problem.resources.total_threshold());
    print!("{}", rec.schedule.summary(&problem));

    // --- execute the coupled run for real, with tracing attached ---
    let tracer = Arc::new(obs::Tracer::with_capacity(64 * 1024));
    let handle = obs::TraceHandle::new(tracer.clone());
    sys.tracer = handle.clone(); // kernel spans nest under the step spans
    let mut analyses: Vec<Box<dyn Analysis<System>>> = vec![
        Box::new(a1_hydronium_rdf()),
        Box::new(a2_ion_rdf()),
        Box::new(a3_vacf(16)),
        Box::new(a4_msd()),
    ];
    let report = run_coupled_traced(
        &mut sys,
        &mut analyses,
        &rec.schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 0,
        },
        &handle,
    );
    println!("\ncoupled run complete:");
    println!("  simulation time : {:>8.2} s", report.sim_time);
    println!(
        "  analysis time   : {:>8.2} s (predicted {:.2} s)",
        report.total_analysis_time(),
        rec.predicted_time
    );
    println!(
        "  measured overhead: {:.1}% (threshold 10%)",
        report.overhead_fraction() * 100.0
    );
    for at in &report.analysis_times {
        println!(
            "    {:<22} {:>3} runs, {:>8.2} ms total",
            at.name,
            at.analyze_count,
            at.total() * 1e3
        );
    }
    println!("\nper-kernel attribution (run delta):");
    print!("{}", report.kernel_telemetry.table());

    // --- export the timeline and line it up against the model ---
    let timeline = tracer.timeline();
    timeline.validate().expect("well-formed timeline");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/md_insitu.timeline.json", timeline.to_json_string())
        .expect("write timeline");
    std::fs::write(
        "target/md_insitu.chrome.json",
        timeline.to_chrome_trace_string(),
    )
    .expect("write chrome trace");
    println!(
        "\ntimeline: {} spans, {} dropped -> target/md_insitu.timeline.json, \
         target/md_insitu.chrome.json",
        timeline.spans.len(),
        timeline.dropped
    );

    let drift = attribute(&problem, &rec.schedule, &timeline).expect("drift report");
    println!("drift vs Eq. 2-4 model: {}", drift.summary());
    std::fs::write(
        "target/md_insitu.drift.json",
        drift.to_json().to_string_pretty(),
    )
    .expect("write drift report");

    // --- one sink for solver + kernel + coupler telemetry ---
    let registry = obs::Registry::new();
    rec.export_into(&registry);
    report.export_into(&registry);
    println!("\nunified telemetry registry:");
    print!("{}", registry.snapshot().table());

    // --- adaptive leg: what if the calibration had been stale? ---
    // Re-solve with a4's compute cost modeled 20x too cheap — the
    // schedule over-commits — then let the closed control loop
    // (docs/ADAPTIVE.md) catch the blowout mid-run and re-solve from the
    // measured costs.
    let mut stale = problem.clone();
    stale.analyses[3].compute_time /= 20.0;
    let stale_rec = Advisor::new(AdvisorOptions::default())
        .recommend(&stale)
        .expect("solvable");
    println!(
        "\nadaptive leg: a4 modeled at {:.3} ms (actually ~{:.3} ms), schedule over-commits to {} runs",
        stale.analyses[3].compute_time * 1e3,
        problem.analyses[3].compute_time * 1e3,
        stale_rec.counts[3],
    );
    let tracer = Arc::new(obs::Tracer::with_capacity(64 * 1024));
    let handle = obs::TraceHandle::new(tracer.clone());
    sys.tracer = handle.clone();
    let mut analyses: Vec<Box<dyn Analysis<System>>> = vec![
        Box::new(a1_hydronium_rdf()),
        Box::new(a2_ion_rdf()),
        Box::new(a3_vacf(16)),
        Box::new(a4_msd()),
    ];
    let adaptive = run_coupled_adaptive(
        &mut sys,
        &mut analyses,
        &stale,
        &stale_rec.schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 0,
        },
        &AdaptiveConfig::default(),
        &handle,
    )
    .expect("adaptive run");
    println!("adaptive run: {} reschedule(s) adopted", adaptive.adopted_count());
    for r in &adaptive.reschedules {
        println!(
            "  step {:>3}: {} trigger, measured {:.2} s vs predicted {:.2} s, \
             re-solve {:.1} ms, remaining objective {:.1} -> {:.1}, {}",
            r.step,
            r.reason,
            r.measured_cum,
            r.predicted_cum,
            r.solve_ms,
            r.old_objective,
            r.new_objective,
            if r.adopted {
                format!("adopted ({})", r.verdict)
            } else {
                format!("kept incumbent ({})", r.verdict)
            }
        );
    }
    println!(
        "  analysis time   : {:>8.2} s (budget {:.2} s)",
        adaptive.run.total_analysis_time(),
        stale.resources.total_threshold()
    );
    let timeline = tracer.timeline();
    let adrift = attribute_with_predicted(&stale, &adaptive.schedule, &timeline, &adaptive.predicted)
        .expect("adaptive drift report");
    println!("  drift vs spliced prediction: {}", adrift.summary());
    std::fs::write(
        "target/md_insitu.reschedules.json",
        adaptive.reschedules_json().to_string_pretty(),
    )
    .expect("write reschedule records");
    println!(
        "  {} reschedule event(s) -> target/md_insitu.reschedules.json",
        adaptive.reschedules.len()
    );
}
