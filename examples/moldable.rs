//! The Figure-5 moldable-jobs scenario: the same 100 M-atom problem
//! scheduled at five partition sizes of the Mira model. Watch the
//! non-scaling MSD analysis (A4) get squeezed out as the job scales.
//!
//! ```sh
//! cargo run -p examples --bin moldable --release
//! ```

use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
use machine::Machine;

fn main() {
    let machine = Machine::mira();
    let advisor = Advisor::new(AdvisorOptions::default());
    // paper inputs: seconds per simulation step at each core count
    let scales: [(usize, f64); 5] = [
        (2048, 4.16),
        (4096, 2.12),
        (8192, 1.08),
        (16384, 0.61),
        (32768, 0.40),
    ];
    println!("100M-atom water+ions, threshold = 10% of simulation time\n");
    println!("{:>7}  {:>9}  {:>4} {:>4} {:>4}  schedule", "cores", "budget(s)", "A1", "A2", "A4");
    for (cores, step_time) in scales {
        let part = machine.partition_for_ranks(cores).expect("BG/Q partition");
        // analytic profiles: A1/A2 strong-scale, A4 does not (see the
        // bench crate for measured versions of the same construction)
        let local = 100e6 / part.ranks() as f64;
        let a = |name: &str, ct: f64| {
            AnalysisProfile::new(name)
                .with_compute(ct, 64e6)
                .with_output(machine.write_time(1e6, &part, machine::StorageTier::ParallelFs), 1e6, 1)
                .with_interval(100)
        };
        let profiles = vec![
            a("hydronium rdf (A1)", 4.1e-6 * local + machine.allreduce_time(2400.0, &part)),
            a("ion rdf (A2)", 4.1e-6 * local + machine.allreduce_time(1600.0, &part)),
            a("msd (A4)", 6.2e-9 * 4e6 * 1000.0), // non-scaling: O(total tracked)
        ];
        let budget = 0.10 * step_time * 1000.0;
        let problem = ScheduleProblem::new(
            profiles,
            ResourceConfig::from_total_threshold(1000, budget, 512.0 * GIB, GIB),
        )
        .expect("valid problem");
        let rec = advisor.recommend(&problem).expect("solvable");
        let bars: String = rec
            .counts
            .iter()
            .map(|&c| "#".repeat(c).to_string())
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "{:>7}  {:>9.1}  {:>4} {:>4} {:>4}  {}",
            cores, budget, rec.counts[0], rec.counts[1], rec.counts[2], bars
        );
    }
    println!("\nA4 collapses with scale because its time is flat while the 10%");
    println!("budget shrinks with the (strong-scaling) simulation step time.");
}
