//! Post-processing vs in-situ analysis, end to end on real data — the
//! Table-4 story: the post-processing path must write and then re-read the
//! whole trajectory; the in-situ path analyzes live memory.
//!
//! ```sh
//! cargo run -p examples --bin postprocess_vs_insitu --release
//! ```

use insitu_core::runtime::Analysis as _;
use mdsim::analysis::Msd;
use mdsim::dump::{Frame, TrajectoryReader, TrajectoryWriter};
use mdsim::{water_ions, BuilderParams, Species};
use perfmodel::Stopwatch;

const ATOMS: usize = 12_544; // the paper's small case
const STEPS: usize = 100;
const FRAME_EVERY: usize = 10;

fn main() {
    let mut sys = water_ions(&BuilderParams {
        n_particles: ATOMS,
        ..Default::default()
    });
    let path = std::env::temp_dir().join("postprocess_vs_insitu.trj");

    // --- simulation with in-situ MSD + trajectory output ---
    let mut msd = Msd::new("msd", vec![Species::Hydronium, Species::Ion]);
    msd.setup(&sys);
    let mut writer = TrajectoryWriter::create(&path).expect("create trajectory");
    let mut insitu = 0.0;
    let sw_total = Stopwatch::start();
    for j in 1..=STEPS {
        sys.step();
        if j % FRAME_EVERY == 0 {
            let sw = Stopwatch::start();
            msd.analyze(&sys);
            insitu += sw.elapsed();
            writer.write_frame(&Frame::capture(&sys)).expect("frame");
        }
    }
    let bytes = writer.finish().expect("finish");
    println!(
        "simulated {STEPS} steps of {ATOMS} atoms in {:.2} s, wrote {:.1} MB trajectory",
        sw_total.elapsed(),
        bytes as f64 / 1e6
    );

    // --- post-processing: read it all back, recompute the MSD series ---
    let sw = Stopwatch::start();
    let frames = TrajectoryReader::open(&path)
        .expect("open")
        .read_all()
        .expect("read");
    let read = sw.elapsed();
    let sw = Stopwatch::start();
    let first = &frames[0];
    let tracked: Vec<usize> = first
        .of_species(Species::Hydronium)
        .into_iter()
        .chain(first.of_species(Species::Ion))
        .collect();
    let mut series = Vec::new();
    for f in &frames {
        let mut sum = 0.0;
        for &i in &tracked {
            for d in 0..3 {
                let dx = f.pos[d][i] - first.pos[d][i];
                sum += dx * dx;
            }
        }
        series.push(sum / tracked.len() as f64);
    }
    let analyze = sw.elapsed();
    std::fs::remove_file(&path).ok();

    println!("\n                      read (s)   analyze (s)");
    println!("post-processing     {read:>9.4}   {analyze:>10.4}");
    println!("in-situ             {:>9}   {insitu:>10.4}", "-");
    println!(
        "\nspeedup (read+analyze vs in-situ): {:.0}x",
        (read + analyze) / insitu.max(1e-9)
    );
    println!(
        "final MSD: post-processed {:.4} (in-situ series has {} points)",
        series.last().unwrap(),
        msd.series.len()
    );
    println!("\nPaper's Table 4 at HPC scale: 12,544 atoms -> 23.89 s read vs 0.01 s in-situ;");
    println!("100,352 atoms -> 2413 s read vs 0.03 s. Reading always loses.");
}
