//! Quickstart: describe your analyses, get an optimal in-situ schedule.
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{AnalysisProfile, CouplingTrace, ResourceConfig, ScheduleProblem, GIB, MIB};

fn main() {
    // 1. Describe each candidate analysis (Table 1 of the paper): how long
    //    one analysis step takes, what it writes, how much memory it needs,
    //    its importance, and the minimum interval between runs.
    let analyses = vec![
        AnalysisProfile::new("descriptive statistics")
            .with_compute(0.4, 64.0 * MIB)
            .with_output(0.1, 16.0 * MIB, 1)
            .with_interval(50),
        AnalysisProfile::new("histograms")
            .with_compute(1.2, 256.0 * MIB)
            .with_output(0.4, 128.0 * MIB, 2)
            .with_interval(100),
        AnalysisProfile::new("temporal correlation")
            .with_per_step(0.002, 2.0 * MIB) // copies state every step
            .with_compute(3.0, 512.0 * MIB)
            .with_output(1.0, 256.0 * MIB, 1)
            .with_interval(100)
            .with_weight(2.0), // twice as important
    ];

    // 2. Describe the resources: 1000 simulation steps, at most 30 s of
    //    total in-situ analysis time, 8 GiB of spare memory, 1 GiB/s to
    //    storage.
    let resources = ResourceConfig::from_total_threshold(1000, 30.0, 8.0 * GIB, GIB);
    let problem = ScheduleProblem::new(analyses, resources).expect("valid problem");

    // 3. Ask the advisor. The result is a certified schedule: which steps
    //    each analysis runs at, and when it writes output.
    let rec = Advisor::new(AdvisorOptions::default())
        .recommend(&problem)
        .expect("solvable");

    println!("objective (Eq. 1): {}", rec.objective);
    println!(
        "predicted analysis time: {:.2} s of {:.2} s allowed ({:.1}% used)\n",
        rec.predicted_time,
        problem.resources.total_threshold(),
        rec.budget_utilization_percent()
    );
    println!("{}", rec.schedule.summary(&problem));

    // 4. The Figure-1 coupling trace of the first 60 steps.
    let trace = CouplingTrace::from_schedule(&rec.schedule, 60, 20);
    println!("coupling trace (first 60 steps, Os = simulation output):");
    println!("{trace}");
}
