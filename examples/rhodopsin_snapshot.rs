//! Renders the Figure-3 style snapshot of the rhodopsin-proxy system:
//! protein (purple) embedded in a membrane (green), solvated by water
//! (blue) and ions (orange). Writes `rhodopsin.ppm` to the current
//! directory.
//!
//! ```sh
//! cargo run -p examples --bin rhodopsin_snapshot --release
//! ```

use mdsim::render::render_xz;
use mdsim::{rhodopsin_proxy, BuilderParams, Species};

fn main() {
    let params = BuilderParams {
        n_particles: 32_000, // the paper's Figure-3 benchmark size
        ..Default::default()
    };
    println!("building the 32,000-atom rhodopsin benchmark...");
    let mut system = rhodopsin_proxy(&params);
    // relax briefly so the snapshot shows a physical configuration
    for _ in 0..10 {
        system.step();
    }
    for s in Species::ALL {
        println!("  {:<10} {:>6} particles", format!("{s:?}"), system.species_count(s));
    }
    let img = render_xz(&system, 512);
    img.write_ppm("rhodopsin.ppm").expect("write PPM");
    println!(
        "wrote rhodopsin.ppm ({}x{}): protein purple / membrane green / water blue / ions orange",
        img.width, img.height
    );
}
