//! Weighted in-situ analyses on a live FLASH-style Sedov blast (the
//! Table-8 scenario executed for real at laptop scale).
//!
//! ```sh
//! cargo run -p examples --bin sedov_insitu --release
//! ```

use amrsim::analysis::{f1_vorticity, f2_l1_norm, f3_l2_norm};
use amrsim::sedov::{measured_shock_radius, SedovSetup};
use amrsim::FlashSim;
use insitu_core::runtime::{run_coupled, Analysis, CouplerConfig};
use insitu_core::{Advisor, AdvisorOptions};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
use perfmodel::Stopwatch;

const BLOCKS: usize = 3; // 3^3 blocks of 12^3 cells
const STEPS: usize = 120;
const ITV: usize = 12;

fn main() {
    let setup = SedovSetup::default();
    let mut sim = FlashSim::sedov(BLOCKS, 12, setup);
    println!(
        "Sedov blast on {} blocks x {}^3 cells ({} cells total)",
        sim.mesh.blocks.len(),
        sim.mesh.block_cells,
        sim.mesh.total_cells()
    );

    // profile the three analyses on the live mesh
    let mut f1 = f1_vorticity();
    let mut f2 = f2_l1_norm();
    let mut f3 = f3_l2_norm();
    let t1 = {
        let sw = Stopwatch::start();
        f1.compute(&sim);
        sw.elapsed()
    };
    let t2 = {
        let sw = Stopwatch::start();
        f2.compute(&sim);
        sw.elapsed()
    };
    let t3 = {
        let sw = Stopwatch::start();
        f3.compute(&sim);
        sw.elapsed()
    };
    println!(
        "profiled: F1 {:.3} ms, F2 {:.3} ms, F3 {:.3} ms per analysis step",
        t1 * 1e3,
        t2 * 1e3,
        t3 * 1e3
    );

    // Table-8 weighting: prefer vorticity (F1) and the cheap L2 norm (F3)
    let mk = |name: &str, ct: f64, w: f64| {
        AnalysisProfile::new(name)
            .with_compute(ct, 32e6)
            .with_output(ct * 0.2 + 1e-6, 8e6, 1)
            .with_interval(ITV)
            .with_weight(w)
    };
    let problem = ScheduleProblem::new(
        vec![
            mk("vorticity (F1)", t1, 2.0),
            mk("L1 error norm (F2)", t2, 1.0),
            mk("L2 error norm (F3)", t3, 2.0),
        ],
        // 5% of the simulation-time estimate, like the paper's I2 case
        ResourceConfig::from_total_threshold(STEPS, (t1 + t2) * 4.0, GIB, GIB),
    )
    .expect("valid problem");
    let rec = Advisor::new(AdvisorOptions::default())
        .recommend(&problem)
        .expect("solvable");
    println!("\nweighted schedule (I2-style importance):");
    print!("{}", rec.schedule.summary(&problem));

    // run the coupled simulation
    let mut analyses: Vec<Box<dyn Analysis<FlashSim>>> =
        vec![Box::new(f1), Box::new(f2), Box::new(f3)];
    let report = run_coupled(
        &mut sim,
        &mut analyses,
        &rec.schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 40,
        },
    );
    println!("\ncoupled run: t = {:.4}, {} checkpoints ({:.1} MB modeled)", sim.time, sim.checkpoints, sim.checkpoint_bytes as f64 / 1e6);
    println!(
        "shock radius: measured {:.3} vs self-similar {:.3}",
        measured_shock_radius(&sim.mesh),
        setup.shock_radius(sim.time)
    );
    println!(
        "analysis overhead: {:.2}% of simulation time",
        report.overhead_fraction() * 100.0
    );
    for at in &report.analysis_times {
        println!(
            "  {:<20} {:>3} runs, {:>8.2} ms",
            at.name,
            at.analyze_count,
            at.total() * 1e3
        );
    }
}
