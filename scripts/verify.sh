#!/usr/bin/env bash
# Tier-1 verification: everything CI (and a pre-commit human) should run.
# Fails fast; each step's command is echoed before it runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo ">>> $*"
    "$@"
}

# build + tests (unit, integration, property)
run cargo build --release --workspace
run cargo test -q --workspace

# doc-tests, separately: `cargo test` runs them per-crate, but this keeps
# a failure attributable when only docs change
run cargo test --doc --workspace

# rustdoc must be warning-free (broken intra-doc links, bad code fences)
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo
echo "verify: all green"
