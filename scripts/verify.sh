#!/usr/bin/env bash
# Tier-1 verification: everything CI (and a pre-commit human) should run.
# Fails fast; each step's command is echoed before it runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo ">>> $*"
    "$@"
}

# build + tests (unit, integration, property)
run cargo build --release --workspace
run cargo test -q --workspace

# doc-tests, separately: `cargo test` runs them per-crate, but this keeps
# a failure attributable when only docs change
run cargo test --doc --workspace

# differential fuzz smoke: a fixed-seed bounded run of the solver
# cross-examination (serial vs parallel vs brute force vs certifier),
# plus replay of every reproducer in tests/corpus/. The case count is
# overridable for deeper local soaks: CERTIFY_FUZZ_CASES=5000 ./scripts/verify.sh
run env CERTIFY_FUZZ_CASES="${CERTIFY_FUZZ_CASES:-200}" \
    cargo test -q -p integration-tests --test certify_differential

# solve-service concurrency stress: 8 client threads, duplicate/near-miss
# mix, client-side re-certification of every reply, dedup single-solve,
# worker-count independence. Deeper soaks: SERVICE_STRESS_ITERS=200
run env SERVICE_STRESS_ITERS="${SERVICE_STRESS_ITERS:-50}" \
    cargo test -q -p integration-tests --test service_stress

# rustdoc must be warning-free (broken intra-doc links, bad code fences)
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# lint drift: clippy clean across the workspace, warnings are errors
run cargo clippy --workspace --all-targets -- -D warnings

# perf smoke: the engine sweep's CI grid plus the branching ablation's
# smoke instances (most-fractional vs two-tier pseudocost) and the cut
# ablation's smoke instances (CutPolicy Off vs Root vs Full), timed so
# gross LP-engine, branching or separation regressions show up.
# --check-cuts gates on cuts-on total nodes <= cuts-off (cuts must never
# grow the search; equal optima are asserted inside the sweep). Full
# sweep: solver_bench, committed as BENCH_milp.json
run bash -c 'time ./target/release/solver_bench --smoke --check-cuts --out target/BENCH_milp_smoke.json'

# sim-kernel smoke: the (size x threads) proxy sweep's CI grid, timed so
# gross kernel regressions show up too (full sweep: sim_bench)
run bash -c 'time ./target/release/sim_bench --smoke --out target/BENCH_sim_smoke.json'

# solve-service smoke: the Zipf request-stream sweep's CI grid, timed —
# cache hit-rate, dedup, and warm-start accounting on the reduced stream
# (full sweep: service_bench, committed as BENCH_service.json)
run bash -c 'time ./target/release/service_bench --smoke --out target/BENCH_service_smoke.json'

# timeline smoke: traced coupled run -> export timeline JSON + Chrome
# trace -> re-parse and validate both, and check the drift report's
# predicted series bitwise against certify's exact replay
run ./target/release/timeline_smoke --out target

# adaptive smoke: the docs/ADAPTIVE.md budget-blowout scenario — the
# static schedule exceeds the budget, the closed-loop adaptive run must
# recover within it, with the reschedule event in the exported timeline
# and the adopted schedule certified
run ./target/release/adaptive_smoke --out target

# observability smoke: traced service batch at 1 vs 4 workers —
# bitwise-identical objective histograms and trace-id sets, a trace id
# on every span, per-request Chrome lanes, a forced certify-reject
# dumping a parseable flightrec/v1 artifact, and a searchtrace
# round-trip (contracts in docs/OBSERVABILITY.md)
run ./target/release/obs_smoke --out target

# trace_view smoke: render the artifacts obs_smoke just wrote, both
# schemas, plus the Chrome re-export
run ./target/release/trace_view target/obs_smoke_timeline.json --chrome target/obs_smoke_trace_view.chrome.json
run ./target/release/trace_view target/obs_smoke_searchtrace.json

# bench_diff smoke: self-comparison of the committed service benchmark
# must report zero regressions (exit nonzero otherwise)
run ./target/release/bench_diff BENCH_service.json BENCH_service.json

echo
echo "verify: all green"
