//! Seeded instance generator + differential checker + shrinker.
//!
//! The generator emits paper-shaped instances (Table-1 parameter families:
//! fixed/per-step/compute/output time and memory, interval constraint,
//! weights) scaled down so that the aggregate MILP stays brute-forceable,
//! and rotates through degenerate families every run: zero I/O bandwidth,
//! memory-tight thresholds, `itv = Steps`, a zero time budget, and a
//! cut-heavy family (tight budget + tight memory) whose fractional LP
//! vertices keep the Gomory/cover separators busy.
//!
//! [`differential_check`] is the oracle composition: the serial and
//! parallel branch & bound (both cut-generating by default), the cut-free
//! search, the node-re-separating `CutPolicy::Full` search, the
//! brute-force enumerator and the independent exact-rational certifier
//! must all agree before an instance passes. Any
//! failure is reduced by [`shrink`] and written to `tests/corpus/` as a
//! `{"problem": ...}` case file (the same shape `certify`'s `recheck`
//! example reads), so the next run — and the next engineer — replays it.

use insitu_core::placement::place_schedule;
use insitu_core::{build_aggregate, formulation, validate_schedule};
use insitu_types::json::{FromJson, ToJson, Value};
use insitu_types::{
    AnalysisProfile, ResourceConfig, Schedule, ScheduleProblem, SearchCertificate,
};
use milp::{CutPolicy, SimplexEngine, SolveError, SolveOptions};
use rand::rngs::StdRng;
use rand::Rng;

/// Enumeration cap for the brute-force oracle; instances whose model is
/// bigger than this skip the brute stage (the other oracles still run).
pub const BRUTE_CAP: usize = 1 << 21;

/// Serial solver options with certificate emission on.
pub fn serial_opts() -> SolveOptions {
    SolveOptions {
        threads: 1,
        certificate: true,
        ..SolveOptions::default()
    }
}

/// Parallel solver options (3 workers) with certificate emission on.
pub fn parallel_opts() -> SolveOptions {
    SolveOptions {
        threads: 3,
        certificate: true,
        ..SolveOptions::default()
    }
}

/// Serial options forcing the dense-tableau oracle engine, so every fuzz
/// case cross-checks the revised simplex against the independent dense
/// implementation.
pub fn dense_opts() -> SolveOptions {
    SolveOptions {
        engine: SimplexEngine::DenseTableau,
        ..serial_opts()
    }
}

/// Serial options with all cutting planes disabled — the pure
/// branch & bound oracle the cut-generating default is checked against.
pub fn cuts_off_opts() -> SolveOptions {
    SolveOptions {
        cut_policy: CutPolicy::Off,
        ..serial_opts()
    }
}

/// Serial options with node-local re-separation on top of the root pool.
pub fn cuts_full_opts() -> SolveOptions {
    SolveOptions {
        cut_policy: CutPolicy::Full,
        ..serial_opts()
    }
}

/// Generates one paper-shaped instance. `case` selects the degenerate
/// family on a fixed rotation so every run covers all of them.
pub fn gen_problem(rng: &mut StdRng, case: usize) -> ScheduleProblem {
    let variant = case % 8;
    let steps = rng.gen_range(4usize..=24);
    let n = rng.gen_range(1usize..=3);
    let mut analyses = Vec::with_capacity(n);
    let mut rough_cost = 0.0f64;
    let mut rough_peak = 0.0f64;
    for i in 0..n {
        // itv chosen so kmax = steps/itv stays in 1..=5 — keeps the unary
        // memory expansion and the brute-force enumeration small
        let kmax = rng.gen_range(1usize..=5);
        let itv = if variant == 3 {
            steps // degenerate: interval as long as the whole run
        } else {
            (steps / kmax).max(1)
        };
        let heavy_mem = variant == 2 || variant == 5 || rng.gen_bool(0.3);
        let mem = |rng: &mut StdRng, hi: f64| if heavy_mem { rng.gen_range(0.0..hi) } else { 0.0 };
        let ct = rng.gen_range(0.0..4.0);
        let ot = rng.gen_range(0.0..2.0);
        let (ft, fm) = if rng.gen_bool(0.4) {
            (rng.gen_range(0.0..1.0), mem(rng, 30.0))
        } else {
            (0.0, 0.0)
        };
        let (it, im) = if rng.gen_bool(0.4) {
            (rng.gen_range(0.0..0.02), mem(rng, 3.0))
        } else {
            (0.0, 0.0)
        };
        let cm = mem(rng, 40.0);
        let om = mem(rng, 20.0);
        let output_every = rng.gen_range(0usize..=2);
        // half-integer weights stay exact in binary floating point, so the
        // solver objective and the rational replay agree bit-for-bit
        let weight = rng.gen_range(1u32..=6) as f64 * 0.5;
        analyses.push(
            AnalysisProfile::new(format!("a{i}"))
                .with_fixed(ft, fm)
                .with_per_step(it, im)
                .with_compute(ct, cm)
                .with_output(ot, om, output_every)
                .with_weight(weight)
                .with_interval(itv),
        );
        let k = steps / itv;
        rough_cost += ft + it * steps as f64 + k as f64 * (ct + ot);
        rough_peak += fm + im * steps as f64 + k as f64 * cm + om;
    }
    let budget = match variant {
        4 => 0.0, // degenerate: no time at all
        // cut-heavy family: a budget tight enough that the LP vertex is
        // fractional, so Gomory/cover separation fires on most instances
        5 => rough_cost * rng.gen_range(0.05..0.4),
        _ => rough_cost * rng.gen_range(0.05..1.2),
    };
    let mem_threshold = if (variant == 2 || variant == 5) && rough_peak > 0.0 {
        rough_peak * rng.gen_range(0.1..0.9) // degenerate: memory-tight
    } else {
        1e6
    };
    let io_bandwidth = if variant == 0 { 0.0 } else { 1e6 };
    let mut resources = ResourceConfig::from_total_threshold(steps, budget, mem_threshold, 1e6);
    resources.io_bandwidth = io_bandwidth;
    ScheduleProblem::new(analyses, resources).expect("generator emits valid problems")
}

/// Relative-tolerance objective comparison for cross-solver agreement.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Runs the full differential check on one instance. `Ok(())` means every
/// oracle agreed; `Err` describes the first disagreement.
pub fn differential_check(problem: &ScheduleProblem) -> Result<(), String> {
    let built = build_aggregate(problem).map_err(|e| format!("build_aggregate failed: {e}"))?;

    // 1. serial vs parallel branch & bound on the identical model
    let serial = milp::solve(&built.model, &serial_opts())
        .map_err(|e| format!("serial solve failed: {e}"))?;
    let par = milp::solve(&built.model, &parallel_opts())
        .map_err(|e| format!("parallel solve failed: {e}"))?;
    if !close(serial.objective, par.objective) {
        return Err(format!(
            "serial objective {} != parallel objective {}",
            serial.objective, par.objective
        ));
    }

    // 2. sparse (default) vs dense-tableau LP engine on the same search
    let dense = milp::solve(&built.model, &dense_opts())
        .map_err(|e| format!("dense-engine solve failed: {e}"))?;
    if !close(serial.objective, dense.objective) {
        return Err(format!(
            "revised-engine objective {} != dense-engine objective {}",
            serial.objective, dense.objective
        ));
    }

    // 2b. cut ablation: cutting planes must never move the optimum. The
    //    default runs above already carry the root pool (CutPolicy::Root);
    //    here the cut-free search and the node-re-separating search must
    //    land on the same objective, and the Full policy's cut-bearing
    //    certificate is checked against the replay in stage 5
    let off = milp::solve(&built.model, &cuts_off_opts())
        .map_err(|e| format!("cuts-off solve failed: {e}"))?;
    if !close(serial.objective, off.objective) {
        return Err(format!(
            "cuts-on objective {} != cuts-off objective {}",
            serial.objective, off.objective
        ));
    }
    let full = milp::solve(&built.model, &cuts_full_opts())
        .map_err(|e| format!("cuts-full solve failed: {e}"))?;
    if !close(serial.objective, full.objective) {
        return Err(format!(
            "cuts-on objective {} != cuts-full objective {}",
            serial.objective, full.objective
        ));
    }

    // 3. brute-force enumeration (the model is pure-integer by design)
    match milp::brute::brute_force(&built.model, BRUTE_CAP) {
        Ok(brute) => {
            if !close(brute.objective, serial.objective) {
                return Err(format!(
                    "brute-force objective {} != branch&bound objective {}",
                    brute.objective, serial.objective
                ));
            }
        }
        Err(SolveError::BadModel(msg)) if msg.contains("enumeration") => {} // too big, skip
        Err(e) => return Err(format!("brute force failed: {e}")),
    }

    // 4. place the counts and certify the schedule independently
    let (counts, output_counts) = built.counts_from(&serial.values);
    let schedule = place_schedule(problem, &counts, &output_counts);
    let report = validate_schedule(problem, &schedule);
    if !report.is_feasible() {
        return Err(format!(
            "placed schedule failed certification: {:?}",
            report.violations
        ));
    }
    if !close(report.objective, serial.objective) {
        return Err(format!(
            "replayed objective {} != solver objective {}",
            report.objective, serial.objective
        ));
    }

    // 5. the pruning certificate must close against the replayed objective
    let cert = serial
        .stats
        .certificate
        .as_ref()
        .ok_or("solver did not emit a certificate despite opts.certificate")?;
    if !cert.proven_optimal {
        return Err("solver did not claim proven optimality".into());
    }
    let problems = certify::check_certificate(cert, report.objective);
    if !problems.is_empty() {
        return Err(format!("certificate does not close: {problems:?}"));
    }
    // the Full policy's certificate carries node-local cover cuts on top
    // of the root pool; every recorded cut proof must re-derive exactly
    let full_cert = full
        .stats
        .certificate
        .as_ref()
        .ok_or("cuts-full solve did not emit a certificate")?;
    let problems = certify::check_certificate(full_cert, report.objective);
    if !problems.is_empty() {
        return Err(format!("cuts-full certificate does not close: {problems:?}"));
    }

    // 6. on small memory-free instances the exact time-indexed formulation
    //    is equivalent (see aggregate's module docs) — cross-check it
    let no_mem = problem.analyses.iter().all(|a| {
        a.fixed_mem == 0.0 && a.step_mem == 0.0 && a.compute_mem == 0.0 && a.output_mem == 0.0
    });
    if no_mem && problem.resources.steps <= 16 {
        let (_, exact_obj, _) = formulation::solve_exact_with_stats(problem, &serial_opts())
            .map_err(|e| format!("exact formulation failed: {e}"))?;
        if !close(exact_obj, serial.objective) {
            return Err(format!(
                "exact formulation objective {exact_obj} != aggregate objective {}",
                serial.objective
            ));
        }
    }
    Ok(())
}

/// Greedily shrinks a failing instance: repeatedly applies the first
/// simplification that still fails [`differential_check`], until none
/// does. Returns the minimal instance and its failure message.
pub fn shrink(problem: &ScheduleProblem) -> (ScheduleProblem, String) {
    let mut cur = problem.clone();
    let mut msg = differential_check(&cur).expect_err("shrink needs a failing instance");
    loop {
        let mut reduced = false;
        for cand in candidates(&cur) {
            if let Err(e) = differential_check(&cand) {
                cur = cand;
                msg = e;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (cur, msg);
        }
    }
}

/// Simplification candidates, most aggressive first.
fn candidates(p: &ScheduleProblem) -> Vec<ScheduleProblem> {
    let mut out = Vec::new();
    let mut push = |p: ScheduleProblem| {
        if p.validate().is_ok() {
            out.push(p);
        }
    };
    // drop whole analyses
    if p.len() > 1 {
        for i in 0..p.len() {
            let mut q = p.clone();
            q.analyses.remove(i);
            push(q);
        }
    }
    // halve the horizon
    if p.resources.steps > 2 {
        let mut q = p.clone();
        q.resources.steps /= 2;
        for a in &mut q.analyses {
            a.min_interval = a.min_interval.min(q.resources.steps);
        }
        push(q);
    }
    // zero out parameters one at a time
    for i in 0..p.len() {
        macro_rules! zero {
            ($field:ident) => {
                if p.analyses[i].$field != 0.0 {
                    let mut q = p.clone();
                    q.analyses[i].$field = 0.0;
                    push(q);
                }
            };
        }
        zero!(fixed_time);
        zero!(step_time);
        zero!(output_time);
        zero!(fixed_mem);
        zero!(step_mem);
        zero!(compute_mem);
        zero!(output_mem);
        if p.analyses[i].weight != 1.0 {
            let mut q = p.clone();
            q.analyses[i].weight = 1.0;
            push(q);
        }
        if p.analyses[i].compute_time != 0.0 {
            let mut q = p.clone();
            q.analyses[i].compute_time = 0.0;
            push(q);
        }
        // coarsen the interval (shrinks kmax and the model)
        let itv = p.analyses[i].min_interval;
        if itv < p.resources.steps {
            let mut q = p.clone();
            q.analyses[i].min_interval = (itv * 2).min(q.resources.steps);
            push(q);
        }
    }
    // un-tighten the memory threshold
    if p.resources.mem_threshold < 1e6 {
        let mut q = p.clone();
        q.resources.mem_threshold = 1e6;
        push(q);
    }
    out
}

/// Renders a corpus case file: `{"problem": ..., "schedule"?: ...,
/// "certificate"?: ...}` — the shape `certify --example recheck` reads.
pub fn case_json(
    problem: &ScheduleProblem,
    schedule: Option<&Schedule>,
    certificate: Option<&SearchCertificate>,
) -> String {
    let mut m = std::collections::BTreeMap::new();
    m.insert("problem".to_string(), problem.to_json());
    if let Some(s) = schedule {
        m.insert("schedule".to_string(), s.to_json());
    }
    if let Some(c) = certificate {
        m.insert("certificate".to_string(), c.to_json());
    }
    Value::Object(m).to_string_pretty()
}

/// Parses a corpus case file back into its parts.
pub fn parse_case(
    text: &str,
) -> Result<(ScheduleProblem, Option<Schedule>, Option<SearchCertificate>), String> {
    let doc = Value::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Value::Object(m) = &doc else {
        return Err("top level must be an object".into());
    };
    let problem = match m.get("problem") {
        Some(v) => ScheduleProblem::from_json(v).map_err(|e| format!("bad `problem`: {e}"))?,
        None => return Err("missing `problem`".into()),
    };
    let schedule = match m.get("schedule") {
        Some(v) => Some(Schedule::from_json(v).map_err(|e| format!("bad `schedule`: {e}"))?),
        None => None,
    };
    let certificate = match m.get("certificate") {
        Some(v) => {
            Some(SearchCertificate::from_json(v).map_err(|e| format!("bad `certificate`: {e}"))?)
        }
        None => None,
    };
    Ok((problem, schedule, certificate))
}

/// `tests/corpus/` next to this crate's manifest.
pub fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Writes a (shrunk) failing case into the corpus and returns its path.
pub fn write_corpus_case(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create tests/corpus");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write corpus case");
    path
}
