//! Shared support for the integration suite.
//!
//! The interesting piece is [`fuzz`]: a seeded generator of paper-shaped
//! scheduling instances, the differential check that cross-examines the
//! MILP pipeline (serial branch & bound vs parallel vs brute-force
//! enumeration vs the independent `certify` checker), and a greedy
//! shrinker that reduces any disagreement to a minimal reproducer for
//! `tests/corpus/`.

pub mod fuzz;
