//! placeholder
