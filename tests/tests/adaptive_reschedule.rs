//! The adaptive-vs-static budget-blowout scenario (the deliverable of
//! `docs/ADAPTIVE.md`, reproduction recipe in `EXPERIMENTS.md`).
//!
//! A 40-step run schedules two analyses from a *stale* calibration: the
//! "hog" is modeled at 1 ms/analyze but actually spins 20 ms. The static
//! schedule provably respects the 90 ms budget under the model but blows
//! through it in reality; the adaptive coupler catches the blowout at the
//! first hog run, re-solves for the remaining steps from the measured
//! costs, and finishes within the budget — with the reschedule event in
//! the exported timeline and the adopted schedule certified.

use insitu_core::adaptive::{AdaptiveConfig, TriggerReason};
use insitu_core::advisor::{Advisor, AdvisorOptions};
use insitu_core::runtime::{
    run_coupled_adaptive, run_coupled_traced, Analysis, CouplerConfig, Simulator,
    EVENT_RESCHEDULE,
};
use insitu_core::{attribute, attribute_with_predicted};
use insitu_types::{AnalysisProfile, ResourceConfig, Schedule, ScheduleProblem};
use std::sync::Arc;

const STEPS: usize = 40;
const BUDGET_S: f64 = 0.090;
const HOG_ACTUAL_S: f64 = 0.020;
const LITE_S: f64 = 0.0002;

struct TickSim(usize);
impl Simulator for TickSim {
    type State = usize;
    fn state(&self) -> &usize {
        &self.0
    }
    fn advance(&mut self) {
        self.0 += 1;
    }
}

struct Spin {
    name: &'static str,
    analyze_s: f64,
}
impl Analysis<usize> for Spin {
    fn name(&self) -> &str {
        self.name
    }
    fn analyze(&mut self, _state: &usize) {
        let sw = perfmodel::Stopwatch::start();
        while sw.elapsed() < self.analyze_s {}
    }
}

/// The stale calibration: the hog is modeled 20x cheaper than it runs.
fn modeled_problem() -> ScheduleProblem {
    ScheduleProblem::new(
        vec![
            AnalysisProfile::new("hog")
                .with_compute(0.001, 0.0)
                .with_interval(4),
            AnalysisProfile::new("lite")
                .with_compute(LITE_S, 0.0)
                .with_interval(4),
        ],
        ResourceConfig::from_total_threshold(STEPS, BUDGET_S, 1e9, 1e9),
    )
    .unwrap()
}

fn spinners() -> Vec<Box<dyn Analysis<usize>>> {
    vec![
        Box::new(Spin { name: "hog", analyze_s: HOG_ACTUAL_S }),
        Box::new(Spin { name: "lite", analyze_s: LITE_S }),
    ]
}

fn static_schedule(problem: &ScheduleProblem) -> Schedule {
    let rec = Advisor::default().recommend(problem).expect("solvable");
    // under the (stale) model both analyses fit at max frequency
    assert_eq!(rec.counts, vec![10, 10], "scenario baseline moved");
    rec.schedule
}

#[test]
fn adaptive_finishes_within_the_budget_the_static_schedule_blows() {
    let problem = modeled_problem();
    let schedule = static_schedule(&problem);
    let cfg = CouplerConfig { steps: STEPS, sim_output_every: 0 };

    // --- static leg: provably fine under the model, broke in reality ---
    let tracer = Arc::new(obs::Tracer::with_capacity(4096));
    let report = run_coupled_traced(
        &mut TickSim(0),
        &mut spinners(),
        &schedule,
        &cfg,
        &obs::TraceHandle::new(tracer.clone()),
    );
    let static_total = report.total_analysis_time();
    assert!(
        static_total > BUDGET_S,
        "static run must blow the {BUDGET_S} s budget, spent {static_total}"
    );
    let drift = attribute(&problem, &schedule, &tracer.timeline()).unwrap();
    assert!(
        drift.per_step.last().unwrap().threshold_violated,
        "static run must end over the pro-rated budget"
    );

    // --- adaptive leg: same workload, same stale model ---
    let tracer = Arc::new(obs::Tracer::with_capacity(4096));
    let adaptive = run_coupled_adaptive(
        &mut TickSim(0),
        &mut spinners(),
        &problem,
        &schedule,
        &cfg,
        &AdaptiveConfig::default(),
        &obs::TraceHandle::new(tracer.clone()),
    )
    .unwrap();

    let adaptive_total = adaptive.run.total_analysis_time();
    assert!(
        adaptive_total <= BUDGET_S,
        "adaptive run must stay within {BUDGET_S} s, spent {adaptive_total}"
    );
    assert!(adaptive.adopted_count() >= 1, "{:?}", adaptive.reschedules);
    let first = &adaptive.reschedules[0];
    assert_eq!(first.step, 4, "the first hog run trips the trigger");
    assert_eq!(first.reason, TriggerReason::Budget);
    assert!(first.adopted);
    assert!(
        first.verdict == "PROVED" || first.verdict == "FEASIBLE-ONLY",
        "adopted schedules must be certified, got {}",
        first.verdict
    );
    // fewer hog runs than the static 10, and the executed prefix is kept
    let hog_runs = &adaptive.schedule.per_analysis[0].analysis_steps;
    assert!(hog_runs.len() < 10, "hog must be throttled: {hog_runs:?}");
    assert_eq!(hog_runs[0], 4);

    // the reschedule event is visible in the exported timeline
    let tl = tracer.timeline();
    assert!(tl.events_named(EVENT_RESCHEDULE).count() >= 1);
    let json = tl.to_json_string();
    assert!(json.contains("\"reschedule\""));

    // drift attribution against the *spliced* prediction ends clean
    let drift =
        attribute_with_predicted(&problem, &adaptive.schedule, &tl, &adaptive.predicted).unwrap();
    assert!(
        !drift.per_step.last().unwrap().threshold_violated,
        "adaptive run must end within the pro-rated budget: {}",
        drift.summary()
    );
}

#[test]
fn reschedule_trigger_is_deterministic_across_solver_threads() {
    let problem = modeled_problem();
    let schedule = static_schedule(&problem);
    let cfg = CouplerConfig { steps: STEPS, sim_output_every: 0 };

    let run_with_threads = |threads: usize| {
        let adaptive_cfg = AdaptiveConfig {
            solver: milp::SolveOptions { threads, ..Default::default() },
            ..AdaptiveConfig::default()
        };
        run_coupled_adaptive(
            &mut TickSim(0),
            &mut spinners(),
            &problem,
            &schedule,
            &cfg,
            &adaptive_cfg,
            &obs::TraceHandle::disabled(),
        )
        .unwrap()
    };

    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);

    let steps = |r: &insitu_core::AdaptiveReport| {
        r.reschedules.iter().map(|x| x.step).collect::<Vec<_>>()
    };
    assert_eq!(steps(&serial), vec![4]);
    assert_eq!(
        steps(&serial),
        steps(&parallel),
        "trigger steps must not depend on solver threads"
    );
    assert_eq!(
        serial.reschedules[0].new_objective, parallel.reschedules[0].new_objective,
        "re-solves must close on the same objective at any thread count"
    );
    assert_eq!(
        serial.schedule, parallel.schedule,
        "adopted schedules must be identical"
    );
}

/// The re-solve the adaptive run performs at step 4, frozen as a corpus
/// case: the suffix problem with the hog's *measured* cost and the
/// remaining budget, plus the schedule shape the advisor adopts. The
/// corpus replay (`certify_differential::corpus_replays_clean`) pushes it
/// through every oracle on every run.
#[test]
fn frozen_remaining_problem_matches_an_actual_resolve() {
    let text = std::fs::read_to_string(
        integration_tests::fuzz::corpus_dir().join("adaptive-remaining-budget.json"),
    )
    .expect("corpus case present");
    let (problem, schedule, _) = integration_tests::fuzz::parse_case(&text).unwrap();
    let schedule = schedule.expect("case carries the adopted schedule shape");
    assert_eq!(problem.resources.steps, 36, "36 steps remain after step 4");
    // the recorded schedule certifies against the suffix problem
    let c = certify::certify(&problem, &schedule, None);
    assert_ne!(c.verdict, certify::Verdict::Invalid, "{:?}", c.problems);
    // and a fresh advisor solve of the frozen problem agrees with the
    // recorded counts: throttle the hog, keep the cheap analysis at max
    let rec = Advisor::new(AdvisorOptions::default()).recommend(&problem).unwrap();
    assert_eq!(rec.counts[0], schedule.per_analysis[0].count());
    assert_eq!(rec.counts[1], schedule.per_analysis[1].count());
}
