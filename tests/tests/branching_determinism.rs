//! Determinism and equivalence guarantees for the two-tier branching
//! scheme (pseudocost branching with parallel strong branching at shallow
//! depths, `docs/SOLVER.md`).
//!
//! Pinned here:
//!
//! 1. a **knob matrix** — most-fractional, pure pseudocost, and the
//!    default strong+pseudocost configuration all return the same optimum
//!    on a paper-shaped instance, each cross-checked through the exact
//!    rational certifier,
//! 2. parallel strong branching returns the **bitwise-identical optimum**
//!    at 1 and 4 threads,
//! 3. a serial **node-order regression**: node/probe counts under the
//!    default rule repeat exactly across runs, and the learned-pseudocost
//!    tree is no larger than the most-fractional tree on the exemplar.

use milp::{BranchRule, SolveOptions};

/// A Table-5-flavoured instance (distinct from the corpus exemplar):
/// four analyses with mixed weights under tight time and memory budgets.
fn paper_problem() -> insitu_types::ScheduleProblem {
    use insitu_types::AnalysisProfile;
    insitu_types::ScheduleProblem::new(
        vec![
            AnalysisProfile::new("rdf")
                .with_compute(0.5, 64.0)
                .with_output(0.125, 16.0, 1)
                .with_interval(8),
            AnalysisProfile::new("msd")
                .with_per_step(0.0, 2.0)
                .with_compute(1.5, 32.0)
                .with_output(0.25, 8.0, 1)
                .with_interval(16),
            AnalysisProfile::new("vacf")
                .with_compute(2.0, 48.0)
                .with_output(0.5, 12.0, 1)
                .with_interval(20)
                .with_weight(1.5),
            AnalysisProfile::new("voronoi")
                .with_compute(6.0, 128.0)
                .with_output(1.0, 32.0, 1)
                .with_interval(25)
                .with_weight(2.0),
        ],
        insitu_types::ResourceConfig::from_total_threshold(100, 40.0, 512.0, 1e6),
    )
    .expect("valid problem")
}

fn opts(rule: BranchRule, threads: usize) -> SolveOptions {
    SolveOptions {
        branch_rule: rule,
        threads,
        certificate: true,
        ..SolveOptions::default()
    }
}

/// Pseudocosts trusted immediately and no strong-branching depth window:
/// the solver never probes, exercising the estimate-only scoring path.
fn pseudocost_only_opts() -> SolveOptions {
    SolveOptions {
        pseudocost_reliability: 0,
        strong_branch_depth: 0,
        ..opts(BranchRule::Pseudocost, 1)
    }
}

#[test]
fn knob_matrix_agrees_and_certifies() {
    let problem = paper_problem();
    let built = insitu_core::build_aggregate(&problem).expect("model builds");
    let configs = [
        ("most-fractional", opts(BranchRule::MostFractional, 1)),
        ("pseudocost-only", pseudocost_only_opts()),
        ("strong+pseudocost", opts(BranchRule::Pseudocost, 1)),
    ];
    let mut objectives: Vec<(&str, f64)> = Vec::new();
    for (name, o) in &configs {
        let sol = milp::solve(&built.model, o).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert!(sol.proven_optimal, "{name} must prove optimality");
        // cross-check through the independent exact-rational certifier
        let (counts, output_counts) = built.counts_from(&sol.values);
        let schedule =
            insitu_core::placement::place_schedule(&problem, &counts, &output_counts);
        let cert = sol.stats.certificate.as_ref().expect("certificate emitted");
        let checked = certify::certify(&problem, &schedule, Some(cert));
        assert_eq!(
            checked.verdict,
            certify::Verdict::Proved,
            "{name}: {:?}",
            checked.problems
        );
        objectives.push((name, sol.objective));
    }
    for pair in objectives.windows(2) {
        assert!(
            (pair[0].1 - pair[1].1).abs() < 1e-9,
            "optima diverge: {:?} vs {:?}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn strong_branching_optimum_is_thread_count_invariant() {
    let problem = paper_problem();
    let built = insitu_core::build_aggregate(&problem).expect("model builds");
    // force probing everywhere so the parallel candidate evaluation is hot
    let deep = |threads| SolveOptions {
        strong_branch_depth: usize::MAX,
        pseudocost_reliability: usize::MAX,
        ..opts(BranchRule::Pseudocost, threads)
    };
    let serial = milp::solve(&built.model, &deep(1)).expect("serial solves");
    assert!(serial.stats.strong_branch_calls > 0, "probing must engage");
    for threads in [2usize, 4] {
        let par = milp::solve(&built.model, &deep(threads)).expect("parallel solves");
        assert_eq!(
            par.objective.to_bits(),
            serial.objective.to_bits(),
            "threads={threads}: {} vs {}",
            par.objective,
            serial.objective
        );
        assert!(par.proven_optimal);
    }
}

#[test]
fn branching_node_order_regression() {
    let problem = paper_problem();
    let built = insitu_core::build_aggregate(&problem).expect("model builds");
    let runs: Vec<_> = (0..3)
        .map(|_| milp::solve(&built.model, &opts(BranchRule::Pseudocost, 1)).unwrap())
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.nodes, runs[0].nodes, "node count drifted between runs");
        assert_eq!(r.iterations, runs[0].iterations, "pivot count drifted");
        assert_eq!(r.values, runs[0].values, "argmax drifted");
        assert_eq!(
            r.stats.strong_branch_lps, runs[0].stats.strong_branch_lps,
            "probe count drifted"
        );
        assert_eq!(r.stats.pseudocost_branches, runs[0].stats.pseudocost_branches);
    }
    // the learned rule must not search a larger tree than most-fractional
    // on this instance (the headline claim of the branching rework)
    let mf = milp::solve(&built.model, &opts(BranchRule::MostFractional, 1)).unwrap();
    assert!(
        runs[0].nodes <= mf.nodes,
        "pseudocost tree ({}) larger than most-fractional tree ({})",
        runs[0].nodes,
        mf.nodes
    );
}
