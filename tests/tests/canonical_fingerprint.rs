//! Property tests for the canonical instance fingerprint.
//!
//! The serving tier keys its cache on [`certify::fingerprint`], so three
//! properties are load-bearing:
//!
//! 1. **Reorder invariance** — the same instance submitted in any
//!    analysis order fingerprints identically (otherwise duplicates miss
//!    the cache),
//! 2. **Encoding invariance** — rational-equal `f64` encodings (`0.0`
//!    vs `-0.0`) fingerprint identically, matching the exact replay's
//!    view of the inputs,
//! 3. **No collisions** — across the same 200-instance seeded corpus
//!    the differential fuzz harness uses, equal fingerprints only ever
//!    come from equal canonical instances; distinct instances (and
//!    therefore distinct-optimal instances) never collide.
//!
//! Knobs: `CERTIFY_FUZZ_CASES` / `CERTIFY_FUZZ_SEED`, shared with
//! `certify_differential.rs` so both suites sweep the same corpus.

use std::collections::HashMap;

use certify::{fingerprint, Fingerprint};
use insitu_types::canonical::{canonicalize, from_canonical_schedule, to_canonical_schedule};
use insitu_types::ScheduleProblem;
use integration_tests::fuzz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn case_rng(seed: u64, case: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9))
}

/// Fisher–Yates shuffle of the analysis list (the vendored rand shim has
/// no `shuffle`, so roll it by hand).
fn shuffled(problem: &ScheduleProblem, rng: &mut StdRng) -> ScheduleProblem {
    let mut q = problem.clone();
    for i in (1..q.analyses.len()).rev() {
        let j = rng.gen_range(0..=i);
        q.analyses.swap(i, j);
    }
    q
}

#[test]
fn fingerprint_invariant_under_analysis_reordering() {
    let cases = env_u64("CERTIFY_FUZZ_CASES", 200) as usize;
    let seed = env_u64("CERTIFY_FUZZ_SEED", 20_150_815);
    for case in 0..cases {
        let mut rng = case_rng(seed, case);
        let p = fuzz::gen_problem(&mut rng, case);
        let fp = fingerprint(&p);
        for _ in 0..3 {
            let q = shuffled(&p, &mut rng);
            assert_eq!(
                fingerprint(&q),
                fp,
                "case {case}: reordered analyses changed the fingerprint"
            );
            assert_eq!(
                canonicalize(&q).0,
                canonicalize(&p).0,
                "case {case}: reordering changed the canonical form"
            );
        }
    }
}

#[test]
fn fingerprint_invariant_under_rational_equal_encodings() {
    let cases = env_u64("CERTIFY_FUZZ_CASES", 200).min(200) as usize;
    let seed = env_u64("CERTIFY_FUZZ_SEED", 20_150_815);
    let mut flipped = 0usize;
    for case in 0..cases {
        let mut rng = case_rng(seed, case);
        let p = fuzz::gen_problem(&mut rng, case);
        // -0.0 is a different bit pattern but the same rational number;
        // gen_problem leaves many fields at 0.0, so this exercises real
        // instances, not a synthetic corner
        let mut q = p.clone();
        for a in &mut q.analyses {
            for field in [
                &mut a.fixed_time,
                &mut a.step_time,
                &mut a.compute_time,
                &mut a.output_time,
                &mut a.fixed_mem,
                &mut a.step_mem,
                &mut a.compute_mem,
                &mut a.output_mem,
            ] {
                if *field == 0.0 {
                    *field = -0.0;
                    flipped += 1;
                }
            }
        }
        assert_eq!(
            fingerprint(&q),
            fingerprint(&p),
            "case {case}: -0.0 encoding changed the fingerprint"
        );
    }
    assert!(flipped > 0, "corpus never exercised the -0.0 property");
}

#[test]
fn no_collisions_across_the_fuzz_corpus() {
    let cases = env_u64("CERTIFY_FUZZ_CASES", 200) as usize;
    let seed = env_u64("CERTIFY_FUZZ_SEED", 20_150_815);
    let mut seen: HashMap<Fingerprint, (usize, ScheduleProblem)> = HashMap::new();
    for case in 0..cases {
        let mut rng = case_rng(seed, case);
        let p = fuzz::gen_problem(&mut rng, case);
        let (canon, _) = canonicalize(&p);
        let fp = fingerprint(&p);
        if let Some((prev_case, prev)) = seen.get(&fp) {
            // equal fingerprints must mean equal canonical instances —
            // anything else would let the cache serve case A to case B
            // (caught by re-certification, but it must never happen here)
            assert_eq!(
                *prev, canon,
                "cases {prev_case} and {case}: distinct instances collided on {fp}"
            );
        } else {
            seen.insert(fp, (case, canon));
        }
    }
    assert!(seen.len() > cases / 2, "corpus unexpectedly degenerate");
}

#[test]
fn schedule_permutation_round_trips_on_fuzz_instances() {
    let seed = env_u64("CERTIFY_FUZZ_SEED", 20_150_815);
    for case in 0..40 {
        let mut rng = case_rng(seed, case);
        let p = fuzz::gen_problem(&mut rng, case);
        let q = shuffled(&p, &mut rng);
        let (_, perm) = canonicalize(&q);
        // a synthetic per-analysis schedule survives the order round-trip
        let mut sched = insitu_types::Schedule::empty(q.len());
        for (i, s) in sched.per_analysis.iter_mut().enumerate() {
            *s = insitu_types::AnalysisSchedule::new(vec![i + 1], vec![]);
        }
        let round = from_canonical_schedule(&to_canonical_schedule(&sched, &perm), &perm);
        assert_eq!(round, sched, "case {case}: permutation round-trip broke");
    }
}
