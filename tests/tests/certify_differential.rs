//! Differential fuzz harness for the MILP pipeline.
//!
//! Seeded random paper-shaped instances are pushed through every oracle
//! the workspace has — serial branch & bound, parallel branch & bound,
//! brute-force enumeration, the exact time-indexed formulation, and the
//! independent exact-rational certifier — and all of them must agree.
//! Any disagreement is shrunk to a minimal reproducer and written to
//! `tests/corpus/`, which [`corpus_replays_clean`] replays on every run.
//!
//! Knobs (all environment variables):
//! * `CERTIFY_FUZZ_CASES` — number of instances (default 200),
//! * `CERTIFY_FUZZ_SEED` — base seed (default 20150815, fixed so CI is
//!   deterministic; change it to explore a different corner of the space).

use integration_tests::fuzz;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn differential_fuzz() {
    let cases = env_u64("CERTIFY_FUZZ_CASES", 200) as usize;
    let seed = env_u64("CERTIFY_FUZZ_SEED", 20_150_815);
    let mut failures = Vec::new();
    for case in 0..cases {
        // one RNG per case, derived from (seed, case): any failure can be
        // reproduced alone without replaying the stream before it
        let mut rng = StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let problem = fuzz::gen_problem(&mut rng, case);
        if let Err(msg) = fuzz::differential_check(&problem) {
            let (minimal, min_msg) = fuzz::shrink(&problem);
            let path = fuzz::write_corpus_case(
                &format!("shrunk-seed{seed}-case{case}.json"),
                &fuzz::case_json(&minimal, None, None),
            );
            failures.push(format!(
                "case {case}: {msg}\n  shrunk to {} ({min_msg})",
                path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {cases} fuzz cases disagreed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Every corpus case — hand-transcribed regressions and previously shrunk
/// fuzz failures alike — must pass the full differential check today.
#[test]
fn corpus_replays_clean() {
    let dir = fuzz::corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "tests/corpus must contain at least the seeded regression cases"
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable corpus case");
        let (problem, schedule, certificate) = fuzz::parse_case(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Err(msg) = fuzz::differential_check(&problem) {
            panic!("{}: differential check fails: {msg}", path.display());
        }
        // cases that carry a solved schedule (e.g. the exemplar the README
        // points `recheck` at) must still certify exactly as recorded
        if let Some(s) = &schedule {
            let c = certify::certify(&problem, s, certificate.as_ref());
            match certificate {
                Some(_) => assert_eq!(
                    c.verdict,
                    certify::Verdict::Proved,
                    "{}: {:?}",
                    path.display(),
                    c.problems
                ),
                None => assert_ne!(
                    c.verdict,
                    certify::Verdict::Invalid,
                    "{}: {:?}",
                    path.display(),
                    c.problems
                ),
            }
        }
    }
}

/// Regenerates `tests/corpus/exemplar-proved.json` (the case the README's
/// `recheck` walkthrough uses). Gated so normal runs only read the corpus:
/// `UPDATE_CORPUS=1 cargo test -p integration-tests exemplar`.
#[test]
fn exemplar_case_is_current() {
    let problem = exemplar_problem();
    let built = insitu_core::build_aggregate(&problem).expect("model builds");
    let sol = milp::solve(&built.model, &fuzz::serial_opts()).expect("solves");
    let (counts, output_counts) = built.counts_from(&sol.values);
    let schedule = insitu_core::placement::place_schedule(&problem, &counts, &output_counts);
    let cert = sol.stats.certificate.as_ref().expect("certificate emitted");
    let rendered = fuzz::case_json(&problem, Some(&schedule), Some(cert));
    let path = fuzz::corpus_dir().join("exemplar-proved.json");
    if std::env::var("UPDATE_CORPUS").is_ok() {
        fuzz::write_corpus_case("exemplar-proved.json", &rendered);
        return;
    }
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} missing ({e}); run with UPDATE_CORPUS=1", path.display()));
    assert_eq!(
        on_disk, rendered,
        "exemplar drifted from the current solver; regenerate with UPDATE_CORPUS=1"
    );
}

/// A small Table-5-flavoured instance: three cheap analyses and one dear
/// one under a tight budget, with enough memory pressure to exercise the
/// reset-at-output recursion.
fn exemplar_problem() -> insitu_types::ScheduleProblem {
    use insitu_types::{AnalysisProfile, ResourceConfig};
    insitu_types::ScheduleProblem::new(
        vec![
            AnalysisProfile::new("rdf")
                .with_compute(0.5, 64.0)
                .with_output(0.125, 16.0, 1)
                .with_interval(10),
            AnalysisProfile::new("msd")
                .with_per_step(0.0, 2.0)
                .with_compute(1.5, 32.0)
                .with_output(0.25, 8.0, 1)
                .with_interval(20),
            AnalysisProfile::new("voronoi")
                .with_compute(6.0, 128.0)
                .with_output(1.0, 32.0, 1)
                .with_interval(25)
                .with_weight(2.0),
        ],
        ResourceConfig::from_total_threshold(100, 30.0, 512.0, 1e6),
    )
    .expect("valid problem")
}
