//! Integration: the co-scheduler's placement decision, replayed through
//! the machine crate's discrete-event engine, actually shortens the
//! end-to-end makespan relative to forcing everything in-situ.

use insitu_core::cosched::{solve_cosched, CoschedProblem, Site, StagingConfig, TransferProfile};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use machine::event::{replay, ReplayCost, ReplaySite};
use milp::SolveOptions;

fn problem() -> CoschedProblem {
    CoschedProblem {
        base: ScheduleProblem::new(
            vec![
                AnalysisProfile::new("cheap")
                    .with_compute(0.5, 1e8)
                    .with_output(0.1, 0.0, 1)
                    .with_interval(10),
                AnalysisProfile::new("heavy")
                    .with_compute(8.0, 4e9)
                    .with_output(0.5, 0.0, 1)
                    .with_interval(10)
                    .with_weight(2.0),
            ],
            ResourceConfig::from_total_threshold(100, 20.0, 1e12, 1e9),
        )
        .unwrap(),
        transfers: vec![
            TransferProfile {
                input_bytes: 1e8,
                staging_compute_time: 1.0,
                staging_mem: 1e8,
            },
            TransferProfile {
                input_bytes: 2e9,
                staging_compute_time: 16.0,
                staging_mem: 8e9,
            },
        ],
        staging: StagingConfig {
            network_bw: 10e9,
            transfer_overhead: 0.01,
            time_budget: 400.0,
            mem_capacity: 64e9,
        },
    }
}

fn replay_costs(p: &CoschedProblem, sites: &[Site]) -> Vec<ReplayCost> {
    p.base
        .analyses
        .iter()
        .zip(sites)
        .zip(&p.transfers)
        .map(|((a, site), t)| match site {
            Site::InSitu => ReplayCost {
                site: ReplaySite::InSitu,
                step_time: a.step_time,
                compute_time: a.compute_time,
                output_time: a.output_time,
                transfer_time: 0.0,
            },
            Site::InTransit => ReplayCost {
                site: ReplaySite::InTransit,
                step_time: a.step_time,
                compute_time: t.staging_compute_time,
                output_time: a.output_time,
                transfer_time: p.staging.transfer_time(t.input_bytes),
            },
        })
        .collect()
}

#[test]
fn cosched_replay_beats_forced_insitu() {
    let p = problem();
    let opts = SolveOptions {
        abs_gap: 0.999,
        ..Default::default()
    };
    let rec = solve_cosched(&p, &opts).unwrap();
    // the heavy analysis (8 s in-situ vs 0.21 s transfer) must offload
    assert_eq!(rec.sites[1], Site::InTransit);
    assert!(rec.counts[1] > 0);

    let step_time = 0.3;
    let cos = replay(
        &rec.schedule,
        100,
        step_time,
        &replay_costs(&p, &rec.sites),
        2,
    );
    let forced = replay(
        &rec.schedule,
        100,
        step_time,
        &replay_costs(&p, &[Site::InSitu, Site::InSitu]),
        1,
    );
    assert!(
        cos.makespan() < forced.makespan(),
        "overlap must win: {} vs {}",
        cos.makespan(),
        forced.makespan()
    );
    // the simulation-side blocking matches the solver's accounting within
    // the per-step bookkeeping
    assert!((cos.sim_analysis_busy - rec.sim_side_time).abs() < 1.0,
        "replay busy {} vs solver {}", cos.sim_analysis_busy, rec.sim_side_time);
}

#[test]
fn pure_insitu_replay_matches_validator_total() {
    // with everything in-situ, the DES degenerates to the analytic sum of
    // the validator (Eq. 4): cross-check the two independent accountings
    let p = problem();
    let opts = SolveOptions {
        abs_gap: 0.999,
        ..Default::default()
    };
    // make the network unusable so the co-scheduler stays in-situ
    let mut p2 = p.clone();
    p2.staging.network_bw = 0.0;
    let rec = solve_cosched(&p2, &opts).unwrap();
    assert!(rec.sites.iter().all(|&s| s == Site::InSitu));
    let report = insitu_core::validate_schedule(&p2.base, &rec.schedule);
    assert!(report.is_feasible());
    let des = replay(
        &rec.schedule,
        100,
        0.0, // isolate the analysis time
        &replay_costs(&p2, &rec.sites),
        1,
    );
    assert!(
        (des.sim_analysis_busy - report.total_time).abs() < 1e-9,
        "DES {} vs validator {}",
        des.sim_analysis_busy,
        report.total_time
    );
}
