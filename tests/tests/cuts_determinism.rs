//! Determinism of the cut-generating solver (see `docs/SOLVER.md`).
//!
//! Root separation runs serially before any worker thread spawns, so the
//! root cut pool — order, coefficients, proofs, bit for bit — must be
//! independent of the thread count, and the serial search must be fully
//! bitwise-reproducible run to run.

use insitu_core::build_aggregate;
use insitu_types::CutProof;
use integration_tests::fuzz;
use milp::SolveOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn four_thread_opts() -> SolveOptions {
    SolveOptions {
        threads: 4,
        certificate: true,
        ..SolveOptions::default()
    }
}

#[test]
fn root_cut_pool_is_thread_count_invariant() {
    let mut with_cuts = 0usize;
    for case in 0..24usize {
        let mut rng =
            StdRng::seed_from_u64(0x0C07_5EED ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let problem = fuzz::gen_problem(&mut rng, case);
        let built = build_aggregate(&problem).expect("model builds");

        let serial = milp::solve(&built.model, &fuzz::serial_opts()).expect("serial solve");
        let par = milp::solve(&built.model, &four_thread_opts()).expect("4-thread solve");
        // the generator emits half-integer weights, so distinct optima
        // differ by >= 0.5 and "equal within abs_gap" means exactly equal
        assert_eq!(
            serial.objective.to_bits(),
            par.objective.to_bits(),
            "case {case}: optimum must not depend on thread count"
        );
        let cs = serial.stats.certificate.as_ref().expect("serial certificate");
        let cp = par.stats.certificate.as_ref().expect("parallel certificate");
        assert_eq!(
            cs.cuts, cp.cuts,
            "case {case}: root cut pool must not depend on thread count"
        );
        assert_eq!(cs.dual_bound.to_bits(), cp.dual_bound.to_bits());
        if !cs.cuts.is_empty() {
            with_cuts += 1;
        }

        // the serial search is bitwise-reproducible, node counts included
        let again = milp::solve(&built.model, &fuzz::serial_opts()).expect("serial re-solve");
        assert_eq!(serial.objective.to_bits(), again.objective.to_bits());
        assert_eq!(serial.nodes, again.nodes, "case {case}: serial node count drifted");
        assert_eq!(
            cs.cuts,
            again.stats.certificate.as_ref().expect("certificate").cuts,
            "case {case}: serial cut pool drifted between runs"
        );
    }
    assert!(
        with_cuts >= 2,
        "expected several instances to separate cuts, got {with_cuts}"
    );
}

/// End-to-end tamper check: a solver-emitted certificate whose cut pool
/// has one coefficient nudged in the *strengthening* direction must be
/// rejected by the exact re-derivation (weakening is legal; claiming a
/// stronger cut than GMI allows is not).
#[test]
fn tampered_cut_coefficient_is_rejected() {
    for case in 0..24usize {
        let mut rng =
            StdRng::seed_from_u64(0x0C07_5EED ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let problem = fuzz::gen_problem(&mut rng, case);
        let built = build_aggregate(&problem).expect("model builds");
        let sol = milp::solve(&built.model, &fuzz::serial_opts()).expect("solve");
        let cert = sol.stats.certificate.as_ref().expect("certificate");
        let Some(gomory_at) = cert.cuts.iter().position(|c| matches!(
            c,
            CutProof::Gomory { cut, .. } if !cut.is_empty()
        )) else {
            continue;
        };
        assert!(
            certify::check_certificate(cert, sol.objective).is_empty(),
            "untampered certificate must close"
        );
        let mut bad = cert.clone();
        if let CutProof::Gomory { vars, cut, .. } = &mut bad.cuts[gomory_at] {
            let (var, coeff) = &mut cut[0];
            let at_upper = vars
                .iter()
                .find(|v| v.var == *var)
                .expect("cut var is in the base row")
                .at_upper;
            // shifted coefficient is −coeff for at-upper vars: push the
            // effective coefficient below the exact GMI value either way
            *coeff += if at_upper { 0.25 } else { -0.25 };
        }
        let problems = certify::check_certificate(&bad, sol.objective);
        assert!(
            problems.iter().any(|p| p.contains("cut")),
            "tampered cut must be called out, got {problems:?}"
        );
        return;
    }
    panic!("no fuzz instance produced a Gomory cut to tamper with");
}
