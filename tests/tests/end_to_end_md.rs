//! End-to-end: profile real MD analyses → optimize → execute the coupled
//! run → verify the schedule was honoured and the overhead bounded.

use insitu_core::runtime::{run_coupled, Analysis, CouplerConfig};
use insitu_core::{validate_schedule, Advisor, AdvisorOptions};
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem, GIB};
use mdsim::analysis::{a1_hydronium_rdf, a4_msd};
use mdsim::{water_ions, BuilderParams, System};
use perfmodel::Stopwatch;

const ATOMS: usize = 3_000;
const STEPS: usize = 60;
const ITV: usize = 10;

fn profile<A: Analysis<System>>(a: &mut A, sys: &System) -> AnalysisProfile {
    a.setup(sys);
    // min of 3 trials for a stable estimate
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let sw = Stopwatch::start();
        a.analyze(sys);
        best = best.min(sw.elapsed());
    }
    AnalysisProfile::new(a.name())
        .with_compute(best, 4e6)
        .with_output(1e-5, 1e6, 1)
        .with_interval(ITV)
}

#[test]
fn full_pipeline_respects_threshold() {
    let mut sys = water_ions(&BuilderParams {
        n_particles: ATOMS,
        ..Default::default()
    });
    for _ in 0..2 {
        sys.step();
    }
    let profiles = vec![
        profile(&mut a1_hydronium_rdf(), &sys),
        profile(&mut a4_msd(), &sys),
    ];
    let sw = Stopwatch::start();
    sys.step();
    let step_time = sw.elapsed();
    let sim_time = step_time * STEPS as f64;

    let problem = ScheduleProblem::new(
        profiles,
        ResourceConfig::from_overhead_fraction(STEPS, sim_time, 0.20, GIB, GIB),
    )
    .unwrap();
    let rec = Advisor::new(AdvisorOptions::default())
        .recommend(&problem)
        .unwrap();

    // independently certified
    let report = validate_schedule(&problem, &rec.schedule);
    assert!(report.is_feasible(), "{:?}", report.violations);

    // execute for real
    let mut analyses: Vec<Box<dyn Analysis<System>>> =
        vec![Box::new(a1_hydronium_rdf()), Box::new(a4_msd())];
    let run = run_coupled(
        &mut sys,
        &mut analyses,
        &rec.schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 0,
        },
    );
    // scheduled counts were executed exactly
    for (i, at) in run.analysis_times.iter().enumerate() {
        assert_eq!(at.analyze_count, rec.counts[i], "{}", at.name);
        assert_eq!(at.output_count, rec.output_counts[i]);
    }
    // measured overhead within ~3x of the 20% threshold (single-core
    // timing noise; the model itself is validated separately)
    assert!(
        run.overhead_fraction() < 0.60,
        "overhead {:.1}%",
        run.overhead_fraction() * 100.0
    );
    // the trace linearizes to the same number of simulation steps
    assert_eq!(run.trace.sim_steps(), STEPS);
}

#[test]
fn empty_budget_runs_no_analyses() {
    let mut sys = water_ions(&BuilderParams {
        n_particles: 500,
        ..Default::default()
    });
    let profiles = vec![profile(&mut a1_hydronium_rdf(), &sys)];
    let problem = ScheduleProblem::new(
        profiles,
        ResourceConfig::from_total_threshold(20, 0.0, GIB, GIB),
    )
    .unwrap();
    let rec = Advisor::new(AdvisorOptions::default())
        .recommend(&problem)
        .unwrap();
    assert_eq!(rec.total_analyses(), 0);
    let mut analyses: Vec<Box<dyn Analysis<System>>> = vec![Box::new(a1_hydronium_rdf())];
    let run = run_coupled(
        &mut sys,
        &mut analyses,
        &rec.schedule,
        &CouplerConfig {
            steps: 20,
            sim_output_every: 0,
        },
    );
    assert_eq!(run.analysis_times[0].analyze_count, 0);
    assert_eq!(run.analysis_times[0].total(), 0.0);
}
