//! Property tests: the sparse revised simplex and the dense-tableau oracle
//! are interchangeable.
//!
//! Two layers are exercised. On raw random bounded LPs the engines must
//! agree on feasibility and (when feasible) on the optimal objective. On
//! random paper-shaped scheduling problems the full branch & bound run
//! under either engine must reach the same optimum, and both runs' placed
//! schedules plus pruning certificates must pass the independent
//! exact-rational `certify::certify` check (`Verdict::Proved`).

use insitu_core::placement::place_schedule;
use insitu_core::aggregate::solve_aggregate_counts;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use milp::{solve_lp_relaxation, Cmp, LinExpr, Model, Sense, SimplexEngine, SolveError,
           SolveOptions};
use proptest::prelude::*;

fn engine_opts(engine: SimplexEngine) -> SolveOptions {
    SolveOptions {
        engine,
        threads: 1,
        certificate: true,
        ..SolveOptions::default()
    }
}

/// A random LP with every variable bounded on both sides, so the model is
/// never unbounded (it may still be infeasible — both engines must agree).
/// Coefficients are small integers/halves so optima are exactly
/// representable and the engines can be compared tightly.
#[derive(Debug, Clone)]
struct RandomLp {
    sense: Sense,
    /// (lower, upper) per variable, with lower <= upper.
    bounds: Vec<(f64, f64)>,
    obj: Vec<f64>,
    /// (coefficients, cmp, rhs) per row.
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

impl RandomLp {
    fn build(&self) -> Model {
        let mut m = Model::new(self.sense);
        let vars: Vec<_> = self
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| m.num_var(&format!("x{i}"), lo, hi))
            .collect();
        let mut obj = LinExpr::new();
        for (v, &c) in vars.iter().zip(&self.obj) {
            obj = obj.term(*v, c);
        }
        m.set_objective(obj);
        for (coeffs, cmp, rhs) in &self.rows {
            let mut e = LinExpr::new();
            for (v, &c) in vars.iter().zip(coeffs) {
                e = e.term(*v, c);
            }
            m.add_con(e, *cmp, *rhs);
        }
        m
    }
}

/// Small half-integer coefficients: exactly representable, so both engines
/// should land on numerically identical optima.
fn coeff() -> impl Strategy<Value = f64> {
    (-6i32..=6).prop_map(|c| c as f64 * 0.5)
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..=6, 1usize..=5).prop_flat_map(|(nv, nr)| {
        let bound = (-10i32..=10, 0i32..=12)
            .prop_map(|(lo, span)| (lo as f64 * 0.5, (lo + span) as f64 * 0.5));
        let row = (
            prop::collection::vec(coeff(), nv),
            0u32..3,
            (-20i32..=20).prop_map(|r| r as f64 * 0.5),
        )
            .prop_map(|(coeffs, k, rhs)| {
                let cmp = match k {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                };
                (coeffs, cmp, rhs)
            });
        (
            any::<bool>(),
            prop::collection::vec(bound, nv),
            prop::collection::vec(coeff(), nv),
            prop::collection::vec(row, nr),
        )
            .prop_map(|(maximize, bounds, obj, rows)| RandomLp {
                sense: if maximize { Sense::Maximize } else { Sense::Minimize },
                bounds,
                obj,
                rows,
            })
    })
}

/// Random small scheduling problems (same family as the fuzz generator,
/// trimmed for proptest throughput): half-integer weights and costs keep
/// the optimal objective exactly representable.
fn arb_problem() -> impl Strategy<Value = ScheduleProblem> {
    (
        1usize..=3,                        // number of analyses
        6usize..=16,                       // steps
        prop::collection::vec(1u32..=6, 3), // compute time (halves)
        prop::collection::vec(0u32..=3, 3), // output time (halves)
        prop::collection::vec(2usize..=6, 3), // interval
        prop::collection::vec(1u32..=5, 3), // weight (halves)
        1u32..=8,                          // per-step time budget (quarters)
        any::<bool>(),                     // outputs on/off
    )
        .prop_map(|(n, steps, ct, ot, itv, w, budget, outputs)| {
            let analyses = (0..n)
                .map(|i| {
                    let mut a = AnalysisProfile::new(format!("a{i}"))
                        .with_compute(ct[i] as f64 * 0.5, 0.0)
                        .with_interval(itv[i])
                        .with_weight(w[i] as f64 * 0.5);
                    if outputs {
                        a = a.with_output(ot[i] as f64 * 0.5, 0.0, 1);
                    }
                    a
                })
                .collect();
            // The per-step threshold is a quarter-integer so the Eq. 4
            // budget `cth * Steps` is exactly representable — the exact
            // rational certifier then accepts solutions that sit exactly
            // on the budget boundary (from_total_threshold would divide by
            // `steps` and lose an ulp).
            ScheduleProblem::new(
                analyses,
                ResourceConfig::new(steps, budget as f64 * 0.25, 1e12, 1e9),
            )
            .unwrap()
        })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random bounded LPs both engines agree on feasibility and, when
    /// feasible, on the optimal objective value.
    #[test]
    fn engines_agree_on_random_bounded_lps(lp in arb_lp()) {
        let model = lp.build();
        let revised = solve_lp_relaxation(&model, &engine_opts(SimplexEngine::Revised));
        let dense = solve_lp_relaxation(&model, &engine_opts(SimplexEngine::DenseTableau));
        match (revised, dense) {
            (Ok(r), Ok(d)) => {
                prop_assert!(close(r.objective, d.objective),
                    "revised {} != dense {}", r.objective, d.objective);
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (r, d) => {
                let show = |x: &Result<milp::Solution, SolveError>| match x {
                    Ok(s) => format!("Ok({})", s.objective),
                    Err(e) => format!("Err({e})"),
                };
                prop_assert!(false, "engines disagree: revised {} vs dense {}",
                    show(&r), show(&d));
            }
        }
    }

    /// Full branch & bound on paper-shaped scheduling problems: identical
    /// objective under either engine, and both runs' placed schedules +
    /// certificates pass the exact-rational certifier.
    #[test]
    fn both_engines_certify_on_scheduling_problems(problem in arb_problem()) {
        for engine in [SimplexEngine::Revised, SimplexEngine::DenseTableau] {
            let agg = solve_aggregate_counts(&problem, &engine_opts(engine)).unwrap();
            let schedule = place_schedule(&problem, &agg.counts, &agg.output_counts);
            let cert = certify::certify(&problem, &schedule, agg.stats.certificate.as_ref());
            prop_assert_eq!(cert.verdict, certify::Verdict::Proved,
                "{:?} engine failed certification: {:?}", engine, cert.problems);
        }
        let r = solve_aggregate_counts(&problem, &engine_opts(SimplexEngine::Revised)).unwrap();
        let d = solve_aggregate_counts(&problem, &engine_opts(SimplexEngine::DenseTableau))
            .unwrap();
        prop_assert!(close(r.objective, d.objective),
            "revised {} != dense {}", r.objective, d.objective);
    }
}
