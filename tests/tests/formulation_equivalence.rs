//! Property test: the exact time-indexed MILP (Eqs. 1–9) and the
//! aggregate count-based reformulation agree on the optimal objective, and
//! every schedule either path produces passes the independent validator.

use insitu_core::formulation::solve_exact;
use insitu_core::solve_aggregate;
use insitu_core::validate_schedule;
use insitu_types::{AnalysisProfile, ResourceConfig, ScheduleProblem};
use milp::SolveOptions;
use proptest::prelude::*;

/// Random small scheduling problems with integer-friendly costs so the
/// integral-objective gap trick stays exact.
fn arb_problem() -> impl Strategy<Value = ScheduleProblem> {
    (
        1usize..3,                                   // number of analyses
        8usize..20,                                  // steps
        prop::collection::vec(1u32..6, 3),           // ct (integers)
        prop::collection::vec(0u32..3, 3),           // ot
        prop::collection::vec(2usize..6, 3),         // itv
        prop::collection::vec(0u32..3, 3),           // weight-1 (so w >= 1)
        4u32..40,                                    // budget
        any::<bool>(),                               // outputs on/off
    )
        .prop_map(|(n, steps, ct, ot, itv, wm1, budget, outputs)| {
            let analyses = (0..n)
                .map(|i| {
                    let mut a = AnalysisProfile::new(format!("a{i}"))
                        .with_compute(ct[i] as f64, 0.0)
                        .with_interval(itv[i])
                        .with_weight(1.0 + wm1[i] as f64);
                    if outputs {
                        a = a.with_output(ot[i] as f64, 0.0, 1);
                    }
                    a
                })
                .collect();
            ScheduleProblem::new(
                analyses,
                ResourceConfig::from_total_threshold(steps, budget as f64, 1e12, 1e9),
            )
            .unwrap()
        })
}

fn opts() -> SolveOptions {
    // costs and weights are integral => objective integral => gap < 1 exact
    SolveOptions {
        abs_gap: 0.999,
        ..SolveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_equals_aggregate(problem in arb_problem()) {
        let (exact_sched, exact_obj) = solve_exact(&problem, &opts()).unwrap();
        let (agg_sched, agg_obj) = solve_aggregate(&problem, &opts()).unwrap();
        prop_assert!((exact_obj - agg_obj).abs() < 1e-6,
            "exact {exact_obj} vs aggregate {agg_obj}");
        // both schedules certified by the independent validator
        let re = validate_schedule(&problem, &exact_sched);
        prop_assert!(re.is_feasible(), "exact: {:?}", re.violations);
        let ra = validate_schedule(&problem, &agg_sched);
        prop_assert!(ra.is_feasible(), "aggregate: {:?}", ra.violations);
        // validator's objective agrees with the solver's
        prop_assert!((re.objective - exact_obj).abs() < 1e-6);
        prop_assert!((ra.objective - agg_obj).abs() < 1e-6);
    }

    #[test]
    fn aggregate_never_exceeds_budget(problem in arb_problem()) {
        let (sched, _) = solve_aggregate(&problem, &opts()).unwrap();
        let report = validate_schedule(&problem, &sched);
        prop_assert!(report.total_time <= problem.resources.total_threshold() + 1e-9);
    }

    #[test]
    fn greedy_bounded_by_optimum(problem in arb_problem()) {
        let greedy = insitu_core::baseline::greedy(&problem);
        let greport = validate_schedule(&problem, &greedy);
        prop_assert!(greport.is_feasible(), "greedy must be feasible: {:?}", greport.violations);
        let (_, opt) = solve_aggregate(&problem, &opts()).unwrap();
        prop_assert!(greport.objective <= opt + 1e-6,
            "greedy {} > optimal {opt}", greport.objective);
    }
}
