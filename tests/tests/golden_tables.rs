//! Golden-file tests for the paper-table reproductions (Tables 5–8).
//!
//! Each experiment's `Row` structs are rendered into a stable text form
//! (fixed float precision, no wall-clock telemetry) and diffed against
//! the committed snapshot under `tests/golden/`. A change in solver or
//! formulation that moves any table cell shows up as a readable diff.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p integration-tests --test golden_tables`.

use bench::experiments::{table5_threshold, table6_total, table7_output, table8_weights};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Compares `rendered` to `tests/golden/<name>`, or rewrites the file
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, rendered: String) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} missing ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected,
        rendered,
        "{name} drifted from the committed golden file; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

fn render_table5() -> String {
    let o = table5_threshold::run();
    let mut s = String::from("threshold_pct  A1 A2 A3 A4  analyses_time  within_pct\n");
    for r in &o.rows {
        s.push_str(&format!(
            "{:>5.1}  {} {} {} {}  {:.4}  {:.4}\n",
            r.threshold_pct,
            r.counts[0],
            r.counts[1],
            r.counts[2],
            r.counts[3],
            r.analyses_time,
            r.within_pct
        ));
    }
    s
}

#[test]
fn table5_threshold_golden() {
    check_golden("table5_threshold.txt", render_table5());
}

/// The committed tables must not depend on the kernel thread count: the
/// chunked kernels are bitwise deterministic in `INSITU_THREADS` (see
/// `docs/KERNELS.md`), and the table experiments themselves are driven by
/// paper-quoted profiles. Re-render Table 5 with the knob set and diff it
/// against the same golden file.
#[test]
fn table5_golden_is_thread_count_invariant() {
    std::env::set_var("INSITU_THREADS", "4");
    let rendered = render_table5();
    std::env::remove_var("INSITU_THREADS");
    check_golden("table5_threshold.txt", rendered);
}

#[test]
fn table6_total_golden() {
    let o = table6_total::run();
    let mut s = String::from("threshold_s  R1 R2 R3  within_pct\n");
    for r in &o.rows {
        s.push_str(&format!(
            "{:>7.2}  {} {} {}  {:.4}\n",
            r.threshold, r.counts[0], r.counts[1], r.counts[2], r.within_pct
        ));
    }
    check_golden("table6_total.txt", s);
}

#[test]
fn table7_output_golden() {
    let o = table7_output::run();
    let mut s = String::from("sim_outputs  output_time  threshold  analyses\n");
    for r in &o.rows {
        s.push_str(&format!(
            "{:>3}  {:.4}  {:.4}  {}\n",
            r.sim_outputs, r.output_time, r.threshold, r.analyses
        ));
    }
    s.push_str(&format!("nvram_analyses {}\n", o.nvram_analyses));
    check_golden("table7_output.txt", s);
}

#[test]
fn table8_weights_golden() {
    let o = table8_weights::run();
    let mut s = String::from("weights  F1 F2 F3\n");
    for r in &o.rows {
        s.push_str(&format!(
            "({:.1},{:.1},{:.1})  {} {} {}\n",
            r.weights[0], r.weights[1], r.weights[2], r.counts[0], r.counts[1], r.counts[2]
        ));
    }
    check_golden("table8_weights.txt", s);
}
