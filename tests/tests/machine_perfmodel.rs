//! Cross-crate checks between the machine model and the performance model:
//! the quantities the scheduler consumes must be mutually consistent.

use machine::{Machine, StorageTier, Torus};
use perfmodel::laws::KernelLaw;
use perfmodel::{KernelMeasurement, PerfPredictor};

#[test]
fn diameters_grow_monotonically_with_partition_size() {
    let mut last = 0;
    for nodes in [128usize, 512, 2048, 8192, 32768] {
        let d = Torus::bgq_partition(nodes).unwrap().diameter();
        assert!(d >= last, "{nodes} nodes: diameter {d} < {last}");
        last = d;
    }
}

#[test]
fn predictor_trained_on_machine_model_extrapolates_collectives() {
    // train the comm predictor on machine-model allreduce times at three
    // partition sizes, validate at a fourth: the network-diameter
    // interpolation (paper §4) must track the analytic model closely
    let m = Machine::mira();
    let sizes = [1e6, 8e6, 64e6];
    let train_nodes = [512usize, 2048, 8192];
    let mut train = Vec::new();
    for &nodes in &train_nodes {
        let p = m.partition(nodes, 16).unwrap();
        for &n in &sizes {
            train.push(KernelMeasurement {
                problem_size: n,
                procs: p.ranks() as f64,
                diameter: p.topology.diameter() as f64,
                compute_time: KernelLaw::scalable(1e-6, 0.0).time(n, p.ranks() as f64),
                comm_time: m.allreduce_time(2400.0, &p),
                mem_bytes: 8.0 * n,
            });
        }
    }
    let pred = PerfPredictor::from_measurements(&train);
    let p_test = m.partition(4096, 16).unwrap();
    let truth = m.allreduce_time(2400.0, &p_test);
    let guess = pred.comm_time(8e6, p_test.topology.diameter() as f64);
    let err = (guess - truth).abs() / truth;
    assert!(err < 0.08, "comm prediction error {:.1}%", err * 100.0);
}

#[test]
fn io_model_consistent_across_tiers_and_scales() {
    let m = Machine::mira_with_nvram(2.0e9);
    let small = m.partition(512, 16).unwrap();
    let large = m.partition(8192, 16).unwrap();
    let bytes = 10.0e9;
    // more nodes, faster shared-fs writes (until the peak)
    assert!(
        m.write_time(bytes, &large, StorageTier::ParallelFs)
            < m.write_time(bytes, &small, StorageTier::ParallelFs)
    );
    // NVRAM beats the filesystem at every scale
    for p in [&small, &large] {
        assert!(
            m.write_time(bytes, p, StorageTier::Nvram)
                < m.write_time(bytes, p, StorageTier::ParallelFs)
        );
    }
}

#[test]
fn analysis_memory_budget_feeds_scheduler() {
    // the mth the advisor receives equals node memory minus the
    // simulation's share, aggregated over the partition
    let m = Machine::mira();
    let p = m.partition_for_ranks(16_384).unwrap();
    let sim_bytes_per_node = 12.0 * 1024.0f64.powi(3);
    let mth = m.analysis_memory(&p, sim_bytes_per_node);
    assert_eq!(p.nodes(), 1024);
    let expected = (16.0 - 12.0) * 1024.0f64.powi(3) * 1024.0;
    assert!((mth - expected).abs() < 1.0);
}
