//! Cross-crate observability contracts, property-tested.
//!
//! `obs` is std-only and hand-rolls its JSON, so these tests sit above
//! it and re-parse every exported document with the workspace's real
//! parser (`insitu_types::json::Value`) — the schema promises in
//! `docs/OBSERVABILITY.md` are only honest if a non-`obs` parser agrees.
//!
//! * **Histogram algebra** (`obs/hist/v1`): merge is associative and
//!   commutative at the bit level (shard-and-merge must not depend on
//!   worker scheduling), quantiles respect the documented `< 2×`
//!   relative error bound for positive samples, and snapshots are
//!   insertion-order invariant.
//! * **Flight recorder** (`flightrec/v1`): a dump round-trips through
//!   the JSON parser with every entry kind intact, and the ring keeps
//!   the *newest* entries when it wraps.
//! * **Trace contexts**: ids are pure functions of (fingerprint, seq) —
//!   re-derivation anywhere reproduces them.

use insitu_types::json::Value;
use obs::{FlightRecorder, Hist, TraceContext};
use proptest::prelude::*;

/// Positive finite samples spanning the whole tracked exponent range,
/// plus the nonpositive bin.
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    // mostly latencies/objectives around 1.0, with the occasional
    // extreme magnitude and nonpositive sample mixed in
    prop::collection::vec((0u64..8, 0.0001f64..10_000.0), 0..80).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, v)| match sel {
                0 => 0.0,
                1 => -3.5,
                2 => 1e-300,
                3 => 1e300,
                _ => v,
            })
            .collect()
    })
}

fn hist_of(samples: &[f64]) -> Hist {
    let mut h = Hist::new();
    for &s in samples {
        h.observe(s);
    }
    h
}

proptest! {
    #[test]
    fn hist_merge_is_associative_and_commutative(
        a in arb_samples(),
        b in arb_samples(),
        c in arb_samples(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c == a ∪ (b ∪ c), bit for bit
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(left.to_json_string(), right.to_json_string());
        // a ∪ b == b ∪ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.to_json_string(), ba.to_json_string());
        // and merging equals observing the concatenated stream in any order
        let mut all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let streamed = hist_of(&all);
        all.reverse();
        let reversed = hist_of(&all);
        prop_assert_eq!(streamed.to_json_string(), reversed.to_json_string());
        prop_assert_eq!(left.to_json_string(), streamed.to_json_string());
    }

    #[test]
    fn hist_quantiles_respect_the_2x_error_bound(
        mut samples in prop::collection::vec(0.0001f64..10_000.0, 1..80),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&samples);
        let est = h.quantile(q).unwrap();
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
        let exact = samples[rank];
        // documented bound: the estimate is the bucket's upper edge,
        // clamped to the observed range — within a factor of 2 of the
        // exact quantile for positive samples, and never above the max
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        // a sample exactly on a bucket edge makes the estimate exactly 2x
        prop_assert!(est <= exact * 2.0, "estimate {est} breaks 2x bound on {exact}");
        prop_assert!(est <= h.max && est >= h.min);
    }

    #[test]
    fn hist_json_round_trips_through_the_real_parser(samples in arb_samples()) {
        let h = hist_of(&samples);
        let v = Value::parse(&h.to_json_string()).unwrap();
        prop_assert_eq!(v.get("schema").and_then(Value::as_str), Some("obs/hist/v1"));
        prop_assert_eq!(
            v.get("count").and_then(Value::as_f64),
            Some(samples.len() as f64)
        );
        let bucket_total: f64 = v
            .get("buckets")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|b| b.get("count").and_then(Value::as_f64).unwrap())
            .sum();
        let nonpositive = v.get("nonpositive").and_then(Value::as_f64).unwrap();
        prop_assert_eq!(bucket_total + nonpositive, samples.len() as f64);
    }

    #[test]
    fn trace_ids_are_pure_functions_of_fingerprint_and_seq(
        base_hi in any::<u64>(),
        base_lo in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let base = (base_hi as u128) << 64 | base_lo as u128;
        let a = TraceContext::derive(base, seq);
        let b = TraceContext::derive(base, seq);
        prop_assert_eq!(a, b);
        // the child chain is equally reproducible
        prop_assert_eq!(a.child(7), b.child(7));
        // and distinct sequence numbers separate requests
        prop_assert_ne!(a.trace_id, TraceContext::derive(base, seq.wrapping_add(1)).trace_id);
    }
}

#[test]
fn flightrec_dump_round_trips_through_the_real_parser() {
    let flight = std::sync::Arc::new(FlightRecorder::with_capacity(8));
    let registry = obs::Registry::new();
    registry.attach_flight(flight.clone());
    registry.add("service.requests", 3); // tees a Delta entry into the ring
    let tracer = obs::Tracer::with_capacity(64);
    let ctx = TraceContext::derive(0xFEED_F00D, 42);
    {
        let _g = ctx.enter();
        let mut s = tracer.span("service.request");
        s.tag("class", "fresh");
        tracer.event("cache.evict", &[("victim", obs::TagValue::Int(7))]);
    }
    let tl = tracer.timeline();
    for s in &tl.spans {
        flight.record_span(s.clone());
    }
    for e in &tl.events {
        flight.record_event(e.clone());
    }
    flight.record_delta("manual.tick", 1);

    let snap = registry.snapshot();
    let dump = flight.dump("unit-test", Some("deadbeef"), Some("INVALID"), Some(&snap));
    let v = Value::parse(&dump).expect("flightrec dump must be valid JSON");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("flightrec/v1"));
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("unit-test"));
    assert_eq!(v.get("fingerprint").and_then(Value::as_str), Some("deadbeef"));
    assert_eq!(v.get("verdict").and_then(Value::as_str), Some("INVALID"));
    let entries = v.get("entries").and_then(Value::as_array).unwrap();
    assert_eq!(entries.len(), 4, "span + event + delta + counter tee");
    let kinds: Vec<&str> = entries
        .iter()
        .map(|e| e.get("kind").and_then(Value::as_str).unwrap())
        .collect();
    assert!(kinds.contains(&"span"));
    assert!(kinds.contains(&"event"));
    assert!(kinds.contains(&"delta"));
    // the span kept its trace id through the dump
    let span = entries
        .iter()
        .find(|e| e.get("kind").and_then(Value::as_str) == Some("span"))
        .unwrap();
    assert_eq!(
        span.get("trace_id").and_then(Value::as_str),
        Some(obs::trace_id_hex(ctx.trace_id).as_str())
    );
    // the registry snapshot rides along
    let counters = v
        .get("registry")
        .and_then(|r| r.get("counters"))
        .and_then(Value::as_object)
        .unwrap();
    assert_eq!(
        counters.get("service.requests").and_then(Value::as_f64),
        Some(3.0)
    );
}

#[test]
fn flight_ring_keeps_the_newest_entries_when_it_wraps() {
    let flight = FlightRecorder::with_capacity(4);
    for i in 0..10u64 {
        flight.record_delta("tick", i);
    }
    assert_eq!(flight.recorded(), 10);
    let dump = flight.dump("wrap", None, None, None);
    let v = Value::parse(&dump).unwrap();
    let entries = v.get("entries").and_then(Value::as_array).unwrap();
    assert_eq!(entries.len(), 4, "ring is bounded at its capacity");
    let deltas: Vec<f64> = entries
        .iter()
        .map(|e| e.get("delta").and_then(Value::as_f64).unwrap())
        .collect();
    assert_eq!(deltas, vec![6.0, 7.0, 8.0, 9.0], "oldest entries overwritten");
    assert_eq!(v.get("fingerprint"), Some(&Value::Null));
}
