//! Regression: model results must not depend on analysis insertion order.
//!
//! The serving tier canonicalizes every instance (analyses sorted by
//! name) before solving, and serves the canonical solve to requesters in
//! *any* analysis order. That is only sound if `build_aggregate` and the
//! exact formulation describe the same optimization problem regardless
//! of list order: the optimal **objective** must be identical (it is the
//! value of the instance, not of the encoding). The concrete schedule
//! may legitimately differ between orders when optima are tied — solver
//! tie-breaks follow variable order — which is why the service
//! re-certifies every served schedule instead of assuming uniqueness;
//! here each order's result must certify PROVED against the *other*
//! order's problem once permuted back.

use insitu_core::aggregate::solve_aggregate_counts;
use insitu_core::formulation;
use insitu_core::placement::place_schedule;
use insitu_types::canonical::{canonical_order, to_canonical};
use insitu_types::ScheduleProblem;
use integration_tests::fuzz;
use milp::SolveError;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reversed(p: &ScheduleProblem) -> ScheduleProblem {
    let mut q = p.clone();
    q.analyses.reverse();
    q
}

#[test]
fn aggregate_objective_is_insertion_order_invariant() {
    let mut checked = 0usize;
    for case in 0..60usize {
        let mut rng = StdRng::seed_from_u64(0x0c0d_u64.wrapping_add(case as u64 * 0x9E37_79B9));
        let p = fuzz::gen_problem(&mut rng, case);
        if p.len() < 2 {
            continue;
        }
        let q = reversed(&p);
        let a = solve_aggregate_counts(&p, &fuzz::serial_opts());
        let b = solve_aggregate_counts(&q, &fuzz::serial_opts());
        match (a, b) {
            (Ok(a), Ok(b)) => {
                // weights are half-integers and counts are small ints, so
                // both objectives are exact f64 sums: bitwise comparable
                assert_eq!(
                    a.objective.to_bits(),
                    b.objective.to_bits(),
                    "case {case}: insertion order changed the optimum \
                     ({} vs {})",
                    a.objective,
                    b.objective
                );
                // each order's schedule, permuted into the other order,
                // must still be PROVED optimal for that problem
                let sched_b = place_schedule(&q, &b.counts, &b.output_counts);
                let cert = certify::certify(
                    &q,
                    &sched_b,
                    b.stats.certificate.as_ref(),
                );
                assert_eq!(
                    cert.verdict,
                    certify::Verdict::Proved,
                    "case {case}: reversed-order solve failed certification: {:?}",
                    cert.problems
                );
                // both orders' counts, mapped into canonical order, must
                // yield the same Eq. 1 objective on the canonical problem
                // (schedules themselves may differ when optima are tied)
                let canon_counts_a = to_canonical(&a.counts, &canonical_order(&p));
                let canon_counts_b = to_canonical(&b.counts, &canonical_order(&q));
                let canon_out_a = to_canonical(&a.output_counts, &canonical_order(&p));
                let canon_out_b = to_canonical(&b.output_counts, &canonical_order(&q));
                let (canon, _) = insitu_types::canonical::canonicalize(&p);
                let obj_a = place_schedule(&canon, &canon_counts_a, &canon_out_a).objective(&canon);
                let obj_b = place_schedule(&canon, &canon_counts_b, &canon_out_b).objective(&canon);
                assert_eq!(
                    obj_a.to_bits(),
                    obj_b.to_bits(),
                    "case {case}: permuted counts disagree on the replayed objective"
                );
                checked += 1;
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => panic!(
                "case {case}: orders disagree on solvability: {:?} vs {:?}",
                a.map(|s| s.objective),
                b.map(|s| s.objective)
            ),
        }
    }
    assert!(checked >= 20, "too few multi-analysis cases exercised");
}

#[test]
fn exact_formulation_objective_is_insertion_order_invariant() {
    let mut checked = 0usize;
    for case in 0..60usize {
        let mut rng = StdRng::seed_from_u64(0xE84C7_u64.wrapping_add(case as u64 * 0x9E37_79B9));
        let p = fuzz::gen_problem(&mut rng, case);
        // the time-indexed model has 2*n*steps binaries; keep it small
        if p.len() < 2 || p.resources.steps > 10 {
            continue;
        }
        let q = reversed(&p);
        let a = formulation::solve_exact(&p, &fuzz::serial_opts());
        let b = formulation::solve_exact(&q, &fuzz::serial_opts());
        match (a, b) {
            (Ok((_, obj_a)), Ok((_, obj_b))) => {
                assert_eq!(
                    obj_a.to_bits(),
                    obj_b.to_bits(),
                    "case {case}: exact formulation optimum depends on order \
                     ({obj_a} vs {obj_b})"
                );
                checked += 1;
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (a, b) => panic!(
                "case {case}: orders disagree on solvability: {:?} vs {:?}",
                a.map(|(_, o)| o),
                b.map(|(_, o)| o)
            ),
        }
    }
    assert!(checked >= 3, "too few exact-formulation cases exercised");
}
