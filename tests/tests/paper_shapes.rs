//! Integration assertions on the reproduced paper experiments (the fast
//! ones — the measurement-heavy figures are covered by bench unit tests
//! and the `reproduce_all` binary).

use bench_is_not_a_dep::*;

// The experiments live in the bench crate; re-exercise them through its
// public API from outside the crate.
mod bench_is_not_a_dep {
    pub use bench::experiments::{table5_threshold, table6_total, table8_weights};
}

#[test]
fn table5_a4_decay_and_budget_compliance() {
    let o = table5_threshold::run();
    let a4: Vec<usize> = o.rows.iter().map(|r| r.counts[3]).collect();
    assert!(a4.windows(2).all(|w| w[0] >= w[1]), "{a4:?}");
    assert_eq!(a4[3], 0);
    for r in &o.rows {
        assert!(r.within_pct <= 100.0 + 1e-9);
        assert_eq!(r.counts[0], 10);
    }
}

#[test]
fn table6_r1_always_max_heavy_decays() {
    let o = table6_total::run();
    for r in &o.rows {
        assert_eq!(r.counts[0], 10);
    }
    let heavy: Vec<usize> = o.rows.iter().map(|r| r.counts[1] + r.counts[2]).collect();
    assert!(heavy.windows(2).all(|w| w[0] >= w[1]), "{heavy:?}");
    assert_eq!(*heavy.last().unwrap(), 0);
}

#[test]
fn table8_weights_shift_budget() {
    let o = table8_weights::run();
    assert!(o.rows[1].counts[0] > o.rows[0].counts[0], "F1 gains under I2");
    assert!(o.rows[1].counts[1] < o.rows[0].counts[1], "F2 loses under I2");
}

#[test]
fn reports_mention_paper_columns() {
    // every report carries the paper's reference values for side-by-side
    // comparison
    assert!(table5_threshold::run().report.contains("paper"));
    assert!(table6_total::run().report.contains("paper"));
    assert!(table8_weights::run().report.contains("paper"));
}
