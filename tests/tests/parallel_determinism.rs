//! Property tests for the parallel branch-and-bound solver.
//!
//! Two guarantees documented in `docs/SOLVER.md` are pinned here:
//!
//! 1. the parallel search returns the **same objective** as the serial
//!    one (bitwise) on randomized MILP instances, certified against the
//!    brute-force oracle,
//! 2. at one thread the search is **fully deterministic**: node counts,
//!    pivot counts, and the returned argmax repeat exactly across runs.

use milp::brute::brute_force;
use milp::{solve, Cmp, LinExpr, Model, Sense, SolveOptions};
use proptest::prelude::*;

/// Random bounded-integer knapsack-style models, frequently with tied
/// optima (small coefficient ranges) to stress the lexicographic
/// incumbent tie-break.
fn arb_model() -> impl Strategy<Value = Model> {
    (
        2usize..6,                             // variables
        prop::collection::vec(1u32..5, 6),     // weights
        prop::collection::vec(1u32..5, 6),     // profits
        prop::collection::vec(0u32..3, 6),     // upper bounds - 1
        4u32..20,                              // capacity
        any::<bool>(),                         // sense
    )
        .prop_map(|(n, w, p, ub, cap, maximize)| {
            let sense = if maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let mut m = Model::new(sense);
            let vars: Vec<_> = (0..n)
                .map(|i| m.int_var(&format!("x{i}"), 0.0, 1.0 + ub[i] as f64))
                .collect();
            let row = LinExpr::sum(vars.iter().enumerate().map(|(i, &v)| (v, w[i] as f64)));
            if maximize {
                m.add_con(row, Cmp::Le, cap as f64);
            } else {
                // minimization needs a covering constraint to be
                // non-trivial; clamp to what the bounded vars can reach
                // so the instance stays feasible
                let reach: f64 = (0..n).map(|i| w[i] as f64 * (1.0 + ub[i] as f64)).sum();
                m.add_con(row, Cmp::Ge, ((cap / 2) as f64).min(reach));
            }
            m.set_objective(LinExpr::sum(
                vars.iter().enumerate().map(|(i, &v)| (v, p[i] as f64)),
            ));
            m
        })
}

fn opts_with(threads: usize) -> SolveOptions {
    SolveOptions {
        threads,
        ..SolveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_objective_matches_serial_and_oracle(model in arb_model()) {
        let serial = solve(&model, &opts_with(1)).unwrap();
        let oracle = brute_force(&model, 1 << 16).unwrap();
        prop_assert!((serial.objective - oracle.objective).abs() < 1e-6,
            "serial {} vs oracle {}", serial.objective, oracle.objective);
        for threads in [2usize, 4] {
            let par = solve(&model, &opts_with(threads)).unwrap();
            prop_assert_eq!(par.objective.to_bits(), serial.objective.to_bits(),
                "threads={}: {} vs {}", threads, par.objective, serial.objective);
            prop_assert!(par.proven_optimal);
        }
    }

    #[test]
    fn warm_and_cold_solves_agree(model in arb_model()) {
        let warm = solve(&model, &SolveOptions::default()).unwrap();
        let cold = solve(&model, &SolveOptions {
            warm_start: false,
            ..SolveOptions::default()
        }).unwrap();
        prop_assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
        prop_assert_eq!(&warm.values, &cold.values);
    }

    #[test]
    fn single_thread_node_counts_repeat(model in arb_model()) {
        let a = solve(&model, &opts_with(1)).unwrap();
        let b = solve(&model, &opts_with(1)).unwrap();
        prop_assert_eq!(a.nodes, b.nodes);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        prop_assert_eq!(&a.values, &b.values);
        prop_assert_eq!(a.stats.nodes_pruned_bound, b.stats.nodes_pruned_bound);
        prop_assert_eq!(a.stats.nodes_pruned_infeasible, b.stats.nodes_pruned_infeasible);
    }
}

/// Regression: pins the serial node count on a fixed instance so any
/// change to the search order (heap tie-break, plunging, pruning) shows
/// up as a diff instead of silent drift.
#[test]
fn node_count_determinism_regression() {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..8).map(|i| m.binary(&format!("x{i}"))).collect();
    let w = [3.0, 5.0, 2.0, 7.0, 4.0, 1.0, 6.0, 2.5];
    let p = [9.0, 12.0, 4.0, 15.0, 8.0, 2.0, 11.0, 5.0];
    m.add_con(
        LinExpr::sum(vars.iter().zip(w).map(|(&v, w)| (v, w))),
        Cmp::Le,
        14.0,
    );
    m.set_objective(LinExpr::sum(vars.iter().zip(p).map(|(&v, p)| (v, p))));

    let runs: Vec<_> = (0..3)
        .map(|_| solve(&m, &SolveOptions::default()).unwrap())
        .collect();
    assert_eq!(runs[0].objective.round(), 33.0);
    for r in &runs[1..] {
        assert_eq!(r.nodes, runs[0].nodes, "node count drifted between runs");
        assert_eq!(r.iterations, runs[0].iterations);
        assert_eq!(r.values, runs[0].values);
    }
    // telemetry mirrors the top-level counters
    assert_eq!(runs[0].stats.nodes_explored, runs[0].nodes);
    assert_eq!(runs[0].stats.lp_pivots, runs[0].iterations);
}
