//! Concurrency stress suite for the solve service.
//!
//! Many client threads hammer one [`service::SolveService`] with a
//! seeded mix of exact duplicates (shuffled analysis orders), near
//! misses, and fresh instances. The properties under test:
//!
//! * **Nothing unproved is ever served** — every `Ok` reply is
//!   re-certified *client-side* against the exact problem that client
//!   submitted, independent of the service's own gate.
//! * **Dedup never double-solves** — a burst of identical requests
//!   costs exactly one solver invocation; everyone gets the same
//!   optimum.
//! * **Determinism** — equal instances get bitwise-equal objectives no
//!   matter which thread asked, and batch results do not depend on the
//!   worker-thread count.
//! * **Cache churn is harmless** — an instance evicted and re-admitted
//!   (now warm-started from a neighbor) returns the same optimum as a
//!   cold solve, bit for bit.
//!
//! `SERVICE_STRESS_ITERS` scales the per-thread request count (default
//! 25; CI raises it via `scripts/verify.sh`).

use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

use insitu_types::json::Value;
use insitu_types::{AnalysisProfile, ResourceConfig, Schedule, ScheduleProblem};
use integration_tests::fuzz;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{CacheEntry, ServiceConfig, ServiceError, SolveService};

const CLIENTS: usize = 8;

fn iters() -> usize {
    std::env::var("SERVICE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

/// Seeded, solvable base instances the duplicate/near-miss mix draws
/// from. Filtered to non-empty problems the aggregate solver accepts,
/// so every derived request has a well-defined optimum.
fn bases(seed: u64) -> Vec<ScheduleProblem> {
    let mut out = Vec::new();
    let mut case = 0usize;
    while out.len() < 8 && case < 64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
        let p = fuzz::gen_problem(&mut rng, case);
        case += 1;
        if p.len() >= 2
            && insitu_core::aggregate::solve_aggregate_counts(&p, &fuzz::serial_opts()).is_ok()
        {
            out.push(p);
        }
    }
    assert!(out.len() >= 4, "fuzz corpus too degenerate for stress mix");
    out
}

fn shuffled(p: &ScheduleProblem, rng: &mut StdRng) -> ScheduleProblem {
    let mut q = p.clone();
    for i in (1..q.analyses.len()).rev() {
        let j = rng.gen_range(0..=i);
        q.analyses.swap(i, j);
    }
    q
}

/// Draws one request: 60% shuffled duplicate of a base, 25% near miss
/// (one compute time nudged), 15% fresh (unique compute times).
fn draw(bases: &[ScheduleProblem], rng: &mut StdRng, uniq: u64) -> ScheduleProblem {
    let pick = rng.gen_range(0..bases.len());
    let roll: f64 = rng.gen();
    if roll < 0.60 {
        shuffled(&bases[pick], rng)
    } else if roll < 0.85 {
        let mut q = shuffled(&bases[pick], rng);
        let k = rng.gen_range(0..q.analyses.len());
        q.analyses[k].compute_time *= 1.0 + rng.gen_range(1..=5) as f64 / 100.0;
        q
    } else {
        let mut q = bases[pick].clone();
        for (i, a) in q.analyses.iter_mut().enumerate() {
            a.compute_time += (uniq % 997 + 1) as f64 / 1e4 + i as f64 / 1e6;
        }
        q
    }
}

#[test]
fn hammered_service_serves_only_certified_results() {
    let service = SolveService::new(ServiceConfig {
        cache_capacity: 64,
        ..ServiceConfig::default()
    });
    let bases = bases(0x57E5);
    let per_thread = iters();
    // fingerprint -> objective bits, shared across clients: equal
    // instances must get bitwise-equal optima no matter who asked
    let seen: Mutex<HashMap<service::Fingerprint, u64>> = Mutex::new(HashMap::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let service = &service;
            let bases = &bases;
            let seen = &seen;
            let errors = &errors;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC11E_4700 + t as u64);
                for i in 0..per_thread {
                    let uniq = (t * per_thread + i) as u64;
                    let p = draw(bases, &mut rng, uniq);
                    match service.solve(&p) {
                        Ok(reply) => {
                            // client-side proof: the reply must certify
                            // against *this* request, in *this* order
                            let cert =
                                certify::certify(&p, &reply.schedule, reply.certificate.as_ref());
                            if cert.verdict != certify::Verdict::Proved {
                                errors.lock().unwrap().push(format!(
                                    "thread {t} iter {i}: served {} result: {:?}",
                                    cert.verdict, cert.problems
                                ));
                                continue;
                            }
                            let mut seen = seen.lock().unwrap();
                            let bits = reply.objective.to_bits();
                            if let Some(&prev) = seen.get(&reply.fingerprint) {
                                if prev != bits {
                                    errors.lock().unwrap().push(format!(
                                        "thread {t} iter {i}: objective drift on {}",
                                        reply.fingerprint
                                    ));
                                }
                            } else {
                                seen.insert(reply.fingerprint, bits);
                            }
                        }
                        // a nudged instance may legitimately be infeasible;
                        // anything else is a bug
                        Err(ServiceError::Solve(_)) => {}
                        Err(e) => errors
                            .lock()
                            .unwrap()
                            .push(format!("thread {t} iter {i}: {e}")),
                    }
                }
            });
        }
    });

    let errors = errors.into_inner().unwrap();
    assert!(errors.is_empty(), "stress violations:\n{}", errors.join("\n"));

    let snap = service.registry().snapshot();
    let requests = snap.counter("service.requests").unwrap_or(0);
    let hits = snap.counter("service.hits").unwrap_or(0);
    let dedup = snap.counter("service.dedup_waits").unwrap_or(0);
    let misses = snap.counter("service.misses").unwrap_or(0);
    let solves = snap.counter("service.solves").unwrap_or(0);
    assert_eq!(requests, (CLIENTS * iters()) as u64);
    assert_eq!(
        requests,
        hits + dedup + misses,
        "every request is exactly one of hit/dedup/miss"
    );
    // dedup/caching must have saved real work: with a 60% duplicate mix
    // the solver runs far fewer times than requests arrive
    assert!(
        solves < requests,
        "no deduplication happened ({solves} solves for {requests} requests)"
    );
    assert_eq!(snap.counter("service.certify_rejects").unwrap_or(0), 0);
}

#[test]
fn duplicate_burst_is_solved_exactly_once() {
    let service = SolveService::new(ServiceConfig::default());
    let base = bases(0xB0B5).remove(0);
    let barrier = Barrier::new(CLIENTS);

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let service = &service;
                let base = &base;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xD0_0D + t as u64);
                    let p = shuffled(base, &mut rng);
                    barrier.wait(); // maximize the in-flight collision window
                    (p.clone(), service.solve(&p).expect("burst solve failed"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let snap = service.registry().snapshot();
    assert_eq!(
        snap.counter("service.solves"),
        Some(1),
        "a burst of {CLIENTS} identical requests must cost exactly one solve"
    );
    let fresh = replies
        .iter()
        .filter(|(_, r)| r.source == service::ResponseSource::Fresh)
        .count();
    assert_eq!(fresh, 1, "exactly one client leads the solve");

    let bits = replies[0].1.objective.to_bits();
    for (p, reply) in &replies {
        assert_eq!(reply.objective.to_bits(), bits, "burst optimum drifted");
        let cert = certify::certify(p, &reply.schedule, reply.certificate.as_ref());
        assert_eq!(cert.verdict, certify::Verdict::Proved, "{:?}", cert.problems);
    }
}

#[test]
fn batch_results_are_independent_of_worker_count() {
    let bases = bases(0x3A7C);
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let stream: Vec<ScheduleProblem> = (0..40).map(|i| draw(&bases, &mut rng, i)).collect();

    let run = |workers: usize| {
        let service = SolveService::new(ServiceConfig {
            cache_capacity: 16,
            ..ServiceConfig::default()
        });
        service.process_batch(&stream, workers)
    };
    let serial = run(1);
    let wide = run(4);

    for (i, (a, b)) in serial.iter().zip(&wide).enumerate() {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                // schedules may differ when optima tie (cache timing
                // changes which tied solution is cached first), but the
                // optimum itself is worker-count invariant, bit for bit
                assert_eq!(
                    a.objective.to_bits(),
                    b.objective.to_bits(),
                    "request {i}: optimum depends on worker count"
                );
                assert_eq!(a.verdict, certify::Verdict::Proved);
                assert_eq!(b.verdict, certify::Verdict::Proved);
            }
            (Err(ServiceError::Solve(_)), Err(ServiceError::Solve(_))) => {}
            (a, b) => panic!("request {i}: worker counts disagree: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn evicted_then_readmitted_warm_start_matches_cold_solve() {
    // handcrafted instances with a provably unique optimum: counts are
    // capped at 10 (100 steps, interval 10) and weights are 16 vs 1, so
    // `(1 + 16·c_a) + (1 + c_b)` separates every count vector — no two
    // feasible schedules share an objective. Capacity 2 forces the
    // first instance out of the cache.
    let mk = |ct: f64| {
        ScheduleProblem::new(
            vec![
                AnalysisProfile::new("a")
                    .with_compute(ct, 0.0)
                    .with_interval(10)
                    .with_weight(16.0)
                    .with_output(0.1, 0.0, 1),
                AnalysisProfile::new("b")
                    .with_compute(ct * 1.5, 0.0)
                    .with_interval(10)
                    .with_output(0.1, 0.0, 1),
            ],
            ResourceConfig::from_total_threshold(100, 8.0, 1e9, 1e9),
        )
        .unwrap()
    };
    let p0 = mk(1.0);
    let p1 = mk(1.1);
    let p2 = mk(1.2);

    let service = SolveService::new(ServiceConfig {
        cache_capacity: 2,
        ..ServiceConfig::default()
    });
    let cold = service.solve(&p0).unwrap();
    assert_eq!(cold.source, service::ResponseSource::Fresh);
    service.solve(&p1).unwrap();
    service.solve(&p2).unwrap(); // p0 is now evicted
    assert_eq!(
        service.registry().snapshot().counter("service.evictions"),
        Some(1)
    );

    let readmitted = service.solve(&p0).unwrap();
    // a miss again — and with neighbors p1/p2 cached, a warm-started one
    assert!(
        matches!(
            readmitted.source,
            service::ResponseSource::Fresh | service::ResponseSource::Warm
        ),
        "evicted instance served from cache: {:?}",
        readmitted.source
    );
    assert_eq!(
        readmitted.objective.to_bits(),
        cold.objective.to_bits(),
        "warm-started re-solve changed the optimum"
    );
    assert_eq!(readmitted.counts, cold.counts);
    assert_eq!(readmitted.output_counts, cold.output_counts);
    assert_eq!(
        readmitted.schedule, cold.schedule,
        "unique-optimum instance must reproduce the cold schedule exactly"
    );
    assert_eq!(readmitted.verdict, certify::Verdict::Proved);

    // and the re-solve repopulated the cache: next ask is a pure hit
    let hit = service.solve(&p0).unwrap();
    assert_eq!(hit.source, service::ResponseSource::Hit);
    assert_eq!(hit.objective.to_bits(), cold.objective.to_bits());
}

#[test]
fn certify_reject_under_load_dumps_a_parseable_flight_record() {
    // Poison the cache: plant a decoy instance's solution under the
    // target's fingerprint, then let a burst of clients request the
    // target. The certification gate must reject the poisoned entry,
    // every client must still receive a proved result (fresh-solve
    // fallback), and the reject must leave a parseable `flightrec/v1`
    // post-mortem naming the offending fingerprint.
    let service = SolveService::new(ServiceConfig {
        cache_capacity: 16,
        ..ServiceConfig::default()
    });
    let bases = bases(0xF116);
    let target = bases[0].clone();
    let decoy = bases[1].clone();
    let d = service.solve(&decoy).expect("decoy base must solve");
    let fp = certify::fingerprint(&target);
    service.inject_cache_entry_for_test(
        fp,
        Arc::new(CacheEntry {
            problem: decoy.clone(),
            counts: vec![0; decoy.len()],
            output_counts: vec![0; decoy.len()],
            schedule: Schedule::empty(decoy.len()),
            objective: d.objective,
            certificate: d.certificate.clone().expect("fresh solve certifies"),
            nodes: d.nodes,
            hint_accepted: false,
            solved_warm: false,
        }),
    );
    assert!(service.last_flight_dump().is_none());

    let barrier = Barrier::new(CLIENTS);
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let service = &service;
                let target = &target;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xF116 + t as u64);
                    let p = shuffled(target, &mut rng);
                    barrier.wait();
                    (p.clone(), service.solve(&p).expect("reject must recover"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // nothing unproved escaped, despite the poisoned entry
    for (p, reply) in &replies {
        let cert = certify::certify(p, &reply.schedule, reply.certificate.as_ref());
        assert_eq!(cert.verdict, certify::Verdict::Proved, "{:?}", cert.problems);
    }
    let snap = service.registry().snapshot();
    let rejects = snap.counter("service.certify_rejects").unwrap_or(0);
    assert!(rejects >= 1, "the poisoned entry must trip the gate");

    // the reject left a parseable post-mortem
    let dump = service
        .last_flight_dump()
        .expect("certify reject must dump the flight recorder");
    let v = Value::parse(&dump).expect("flight dump must be valid JSON");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("flightrec/v1"));
    assert_eq!(
        v.get("reason").and_then(Value::as_str),
        Some("certify-reject")
    );
    assert_eq!(
        v.get("fingerprint").and_then(Value::as_str),
        Some(fp.to_hex().as_str())
    );
    assert_eq!(v.get("verdict").and_then(Value::as_str), Some("INVALID"));
    assert!(!v.get("entries").and_then(Value::as_array).unwrap().is_empty());
    // the dump's registry snapshot agrees with the live one on rejects
    let dumped = v
        .get("registry")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get("service.certify_rejects"))
        .and_then(Value::as_f64)
        .expect("dump embeds the registry snapshot");
    assert!(dumped >= 1.0);
}
