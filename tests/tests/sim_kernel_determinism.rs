//! Bitwise determinism of the chunked parallel simulation kernels.
//!
//! The contract documented in `docs/KERNELS.md`: chunk counts are a pure
//! function of problem size (never of the thread count), and per-chunk
//! partials are merged in ascending chunk order — so every kernel result
//! is **bitwise identical** at 1, 2, or N threads. This file pins that
//! for the full MD state (positions, forces, energies), every MD analysis
//! kernel, the Euler sweep, and every hydro analysis kernel.

use amrsim::analysis::{f1_vorticity, f2_l1_norm, f3_l2_norm};
use amrsim::sedov::SedovSetup;
use amrsim::{FlashSim, FlowVar};
use insitu_core::runtime::Simulator;
use mdsim::analysis::{a1_hydronium_rdf, a4_msd, r1_gyration, r2_membrane_histogram};
use mdsim::{rhodopsin_proxy, water_ions, BuilderParams};
use parallel::Exec;

/// Thread counts to sweep: serial, small, and more threads than cores.
const THREADS: [usize; 3] = [1, 2, 5];

fn assert_bits_eq(a: &[u64], b: &[u64], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: fingerprint length");
    if let Some(i) = (0..a.len()).find(|&i| a[i] != b[i]) {
        panic!(
            "{label}: first mismatch at word {i}: {:#018x} vs {:#018x}",
            a[i], b[i]
        );
    }
}

/// Full MD fingerprint at `threads`: trajectory state after 5 steps plus
/// every analysis kernel output, as raw f64 bit patterns.
fn md_fingerprint(threads: usize) -> Vec<u64> {
    let mut sys = water_ions(&BuilderParams {
        n_particles: 3_000,
        ..Default::default()
    });
    sys.exec = Exec::with_threads(threads);
    let mut msd = a4_msd();
    use insitu_core::runtime::Analysis as _;
    msd.setup(&sys);
    for _ in 0..5 {
        sys.step();
    }
    let potential = sys.compute_forces();
    let mut bits = vec![potential.to_bits(), sys.kinetic_energy().to_bits()];
    for d in 0..3 {
        bits.extend(sys.pos[d].iter().map(|x| x.to_bits()));
        bits.extend(sys.force[d].iter().map(|x| x.to_bits()));
    }

    let mut rdf = a1_hydronium_rdf();
    rdf.accumulate(&sys);
    for p in 0..3 {
        bits.push(rdf.total_counts(p));
        bits.extend(rdf.g_of_r(&sys, p).iter().map(|x| x.to_bits()));
    }
    bits.push(msd.compute(&sys).to_bits());

    let mut rho = rhodopsin_proxy(&BuilderParams {
        n_particles: 3_000,
        ..Default::default()
    });
    rho.exec = Exec::with_threads(threads);
    bits.push(r1_gyration().compute(&rho).to_bits());
    let mut r2 = r2_membrane_histogram(16);
    r2.accumulate(&rho);
    bits.extend(r2.counts.iter().copied());
    bits
}

/// Full hydro fingerprint at `threads`: every flow variable of every cell
/// after 5 Euler steps plus all three analysis kernels.
fn amr_fingerprint(threads: usize) -> Vec<u64> {
    let mut sim = FlashSim::sedov(2, 8, SedovSetup::default());
    sim.exec = Exec::with_threads(threads);
    for _ in 0..5 {
        sim.advance();
    }
    let mut bits = vec![sim.time.to_bits()];
    let n = sim.mesh.block_cells;
    for b in &sim.mesh.blocks {
        for var in [
            FlowVar::Dens,
            FlowVar::Pres,
            FlowVar::Velx,
            FlowVar::Vely,
            FlowVar::Velz,
        ] {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        bits.push(b.cell(var, i, j, k).to_bits());
                    }
                }
            }
        }
    }
    let (max_mag, enstrophy) = f1_vorticity().compute(&sim);
    bits.push(max_mag.to_bits());
    bits.push(enstrophy.to_bits());
    let (dens_err, pres_err) = f2_l1_norm().compute(&sim);
    bits.push(dens_err.to_bits());
    bits.push(pres_err.to_bits());
    for v in f3_l2_norm().compute(&sim) {
        bits.push(v.to_bits());
    }
    bits
}

#[test]
fn md_kernels_bitwise_identical_across_thread_counts() {
    let base = md_fingerprint(THREADS[0]);
    for &t in &THREADS[1..] {
        assert_bits_eq(&base, &md_fingerprint(t), &format!("md @ {t} threads"));
    }
}

#[test]
fn hydro_kernels_bitwise_identical_across_thread_counts() {
    let base = amr_fingerprint(THREADS[0]);
    for &t in &THREADS[1..] {
        assert_bits_eq(&base, &amr_fingerprint(t), &format!("amr @ {t} threads"));
    }
}
