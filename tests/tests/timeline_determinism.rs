//! Structural determinism of the step-indexed run timeline.
//!
//! Two coupled runs with identical inputs must produce **structurally
//! identical** timelines — same span tree, same step indices, same
//! decision tags — with only wall-clock fields (start/duration, thread
//! ids) differing. `obs::Timeline::structural_fingerprint` encodes
//! exactly that invariant; this file pins it at 1 and 4 worker threads,
//! and pins that the coupler-level span structure (everything except
//! the kernel spans, whose `threads` tag necessarily reflects the pool
//! size) is identical *across* thread counts too.

use insitu_core::runtime::{run_coupled_traced, Analysis, CouplerConfig};
use mdsim::analysis::{a1_hydronium_rdf, a2_ion_rdf};
use mdsim::{water_ions, BuilderParams, System};
use parallel::Exec;
use std::sync::Arc;

const STEPS: usize = 12;

fn traced_run(threads: usize) -> obs::Timeline {
    let mut sys = water_ions(&BuilderParams {
        n_particles: 1_500,
        ..Default::default()
    });
    sys.exec = Exec::with_threads(threads);
    let tracer = Arc::new(obs::Tracer::with_capacity(8 * 1024));
    let handle = obs::TraceHandle::new(tracer.clone());
    sys.tracer = handle.clone();

    let mut schedule = insitu_types::Schedule::empty(2);
    schedule.per_analysis[0] =
        insitu_types::AnalysisSchedule::new(vec![3, 6, 9, 12], vec![6, 12]);
    schedule.per_analysis[1] = insitu_types::AnalysisSchedule::new(vec![4, 8, 12], vec![12]);
    let mut analyses: Vec<Box<dyn Analysis<System>>> =
        vec![Box::new(a1_hydronium_rdf()), Box::new(a2_ion_rdf())];
    run_coupled_traced(
        &mut sys,
        &mut analyses,
        &schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 4,
        },
        &handle,
    );
    let tl = tracer.timeline();
    tl.validate().expect("well-formed timeline");
    assert_eq!(tl.dropped, 0);
    tl
}

/// The coupler-level slice of the fingerprint: drop kernel spans (the
/// simulator's own `md.*` instrumentation carries a `threads` tag that
/// legitimately differs with the pool size) and keep everything the
/// scheduler decided — names, step indices, analysis ids, decisions.
fn coupler_fingerprint(tl: &obs::Timeline) -> String {
    tl.structural_fingerprint()
        .lines()
        .filter(|l| !l.starts_with("span md."))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn identical_runs_produce_structurally_identical_timelines() {
    for threads in [1usize, 4] {
        let a = traced_run(threads);
        let b = traced_run(threads);
        assert_eq!(
            a.structural_fingerprint(),
            b.structural_fingerprint(),
            "timeline structure diverged between identical runs at {threads} threads"
        );
        // sanity: the fingerprint really ignores wall-clock — durations
        // almost surely differ between the two runs
        assert_eq!(a.spans.len(), b.spans.len());
    }
}

#[test]
fn coupler_span_structure_is_thread_count_invariant() {
    let one = traced_run(1);
    let four = traced_run(4);
    assert_eq!(
        coupler_fingerprint(&one),
        coupler_fingerprint(&four),
        "scheduled span structure must not depend on the worker pool size"
    );
}
