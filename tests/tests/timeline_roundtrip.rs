//! Exporter round-trips, drift attribution, and overload behaviour of
//! the tracing layer, exercised through a real coupled run.
//!
//! - the `obs/timeline/v1` JSON and Chrome trace-event exports re-parse
//!   with the workspace JSON parser and agree with the in-memory
//!   timeline record-for-record;
//! - the drift report's predicted series is **bitwise** equal to
//!   `certify`'s exact Eq. 2–4 replay;
//! - a run that overflows the ring reports the exact number of dropped
//!   records and never reallocates the buffer.

use insitu_core::attribution::attribute;
use insitu_core::runtime::{run_coupled_traced, Analysis, CouplerConfig, SPAN_STEP};
use insitu_types::json::Value;
use insitu_types::{
    AnalysisProfile, AnalysisSchedule, ResourceConfig, Schedule, ScheduleProblem,
};
use mdsim::analysis::{a1_hydronium_rdf, a2_ion_rdf};
use mdsim::{water_ions, BuilderParams, System};
use std::sync::Arc;

const STEPS: usize = 16;

fn problem_and_schedule() -> (ScheduleProblem, Schedule) {
    let problem = ScheduleProblem::new(
        vec![
            AnalysisProfile::new("a1_hydronium_rdf")
                .with_compute(4e-3, 6e6)
                .with_output(1e-3, 2e6, 1)
                .with_interval(4),
            AnalysisProfile::new("a2_ion_rdf")
                .with_compute(4e-3, 6e6)
                .with_output(1e-3, 2e6, 1)
                .with_interval(8),
        ],
        ResourceConfig::from_total_threshold(STEPS, 10.0, 2e9, 1e9),
    )
    .expect("valid problem");
    let mut schedule = Schedule::empty(2);
    schedule.per_analysis[0] = AnalysisSchedule::new(vec![4, 8, 12, 16], vec![8, 16]);
    schedule.per_analysis[1] = AnalysisSchedule::new(vec![8, 16], vec![16]);
    (problem, schedule)
}

fn traced_run(capacity: usize) -> (Arc<obs::Tracer>, Schedule, ScheduleProblem) {
    let (problem, schedule) = problem_and_schedule();
    let mut sys = water_ions(&BuilderParams {
        n_particles: 1_500,
        ..Default::default()
    });
    let tracer = Arc::new(obs::Tracer::with_capacity(capacity));
    let handle = obs::TraceHandle::new(tracer.clone());
    sys.tracer = handle.clone();
    let mut analyses: Vec<Box<dyn Analysis<System>>> =
        vec![Box::new(a1_hydronium_rdf()), Box::new(a2_ion_rdf())];
    run_coupled_traced(
        &mut sys,
        &mut analyses,
        &schedule,
        &CouplerConfig {
            steps: STEPS,
            sim_output_every: 0,
        },
        &handle,
    );
    (tracer, schedule, problem)
}

#[test]
fn json_export_round_trips_record_for_record() {
    let (tracer, _, _) = traced_run(8 * 1024);
    let tl = tracer.timeline();
    let doc = Value::parse(&tl.to_json_string()).expect("export parses");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(obs::timeline::TIMELINE_SCHEMA)
    );
    assert_eq!(
        doc.get("dropped").and_then(Value::as_f64),
        Some(tl.dropped as f64)
    );
    let spans = doc.get("spans").and_then(Value::as_array).expect("spans");
    assert_eq!(spans.len(), tl.spans.len());
    for (got, want) in spans.iter().zip(&tl.spans) {
        assert_eq!(got.get("name").and_then(Value::as_str), Some(want.name));
        assert_eq!(
            got.get("start_ns").and_then(Value::as_f64),
            Some(want.start_ns as f64)
        );
        assert_eq!(
            got.get("dur_ns").and_then(Value::as_f64),
            Some(want.dur_ns as f64)
        );
        // tags survive with their values; spot-check the step index
        if let Some(step) = want.tag_i64("step") {
            let tags = got.get("tags").and_then(Value::as_object).expect("tags");
            let round_tripped = tags
                .iter()
                .find(|(k, _)| k.as_str() == "step")
                .and_then(|(_, v)| v.as_f64());
            assert_eq!(round_tripped, Some(step as f64));
        }
    }
}

#[test]
fn chrome_export_is_a_valid_trace_event_array() {
    let (tracer, _, _) = traced_run(8 * 1024);
    let tl = tracer.timeline();
    let doc = Value::parse(&tl.to_chrome_trace_string()).expect("chrome export parses");
    let events = doc.as_array().expect("trace-event array");
    // spans + events as X/i records, plus "M" metadata records (lane
    // names and the always-present dropped_records count)
    let data_events = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
        .count();
    assert_eq!(data_events, tl.spans.len() + tl.events.len());
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(Value::as_str) == Some("dropped_records")));
    let mut step_events: Vec<(f64, f64)> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("phase");
        assert!(ph == "X" || ph == "i" || ph == "M");
        if ph == "M" {
            continue;
        }
        assert!(e.get("ts").and_then(Value::as_f64).is_some());
        if ph == "X" && e.get("name").and_then(Value::as_str) == Some(SPAN_STEP) {
            step_events.push((
                e.get("ts").and_then(Value::as_f64).unwrap(),
                e.get("dur").and_then(Value::as_f64).unwrap(),
            ));
        }
    }
    // step spans: one per step, monotonic and non-overlapping in the
    // microsecond timeline the chrome viewer renders
    assert_eq!(step_events.len(), STEPS);
    step_events.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in step_events.windows(2) {
        assert!(
            w[1].0 >= w[0].0 + w[0].1,
            "step spans overlap in the chrome export: {w:?}"
        );
    }
}

#[test]
fn drift_report_predicted_series_matches_certify_bitwise() {
    let (tracer, schedule, problem) = traced_run(8 * 1024);
    let tl = tracer.timeline();
    let drift = attribute(&problem, &schedule, &tl).expect("drift report");
    let series = certify::replay_time_series(&problem, &schedule).expect("exact replay");
    assert_eq!(drift.per_step.len(), STEPS);
    assert_eq!(series.len(), STEPS + 1);
    for d in &drift.per_step {
        assert_eq!(
            d.predicted_cum.to_bits(),
            series[d.step].to_f64().to_bits(),
            "model-side divergence at step {}",
            d.step
        );
    }
    assert_eq!(
        drift.predicted_total.to_bits(),
        series.last().unwrap().to_f64().to_bits()
    );
    // measured side is real wall-clock: positive and finite
    for d in &drift.per_step {
        assert!(d.measured_cum.is_finite() && d.measured_cum > 0.0);
    }
}

#[test]
fn overflowing_run_reports_exact_drop_count_without_reallocating() {
    // reference run with ample capacity establishes how many records an
    // identical run emits (span structure is deterministic)
    let (full, _, _) = traced_run(8 * 1024);
    let full_tl = full.timeline();
    assert_eq!(full_tl.dropped, 0);
    let total = full_tl.spans.len() + full_tl.events.len();

    let capacity = 16;
    assert!(total > capacity, "test needs an overflowing run");
    let (tiny, _, _) = traced_run(capacity);
    assert_eq!(tiny.ring_allocated(), capacity, "ring must never grow");
    assert_eq!(
        tiny.dropped(),
        (total - capacity) as u64,
        "drop counter must account for every record that did not fit"
    );
    let tiny_tl = tiny.timeline();
    assert_eq!(tiny_tl.spans.len() + tiny_tl.events.len(), capacity);
    assert_eq!(tiny_tl.dropped, (total - capacity) as u64);
    // the truncated timeline still validates (dangling parents are
    // expected and allowed once records have been dropped)
    tiny_tl.validate().expect("truncated timeline still validates");
    // and every surviving child span still carries its own step tag, so
    // attribution keeps working under overload
    for s in tiny_tl.spans_named(insitu_core::runtime::SPAN_ANALYSIS_ANALYZE) {
        assert!(s.tag_i64("step").is_some());
    }
}
