//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this workspace vendors a
//! small wall-clock benchmarking harness that is API-compatible with the
//! subset of criterion 0.5 the `bench` crate uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a fixed warm-up
//! followed by `sample_size` timed samples and prints min / median / mean
//! per iteration. Good enough to compare configurations on one machine;
//! not a substitute for criterion's outlier analysis.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as criterion provides.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Parses CLI arguments. The real crate filters benchmarks here; this
    /// shim accepts and ignores everything (`cargo bench` passes
    /// `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark(&id.into().label, self.sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    /// Times `f` with an input reference, criterion-style.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Duration of the sample recorded by the last `iter` call.
    elapsed: Duration,
    /// Iterations the timing loop executed.
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // calibrate: find an iteration count that runs ≥ ~2 ms per sample so
    // Instant overhead stays invisible, capped to keep total time bounded
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { elapsed: Duration::ZERO, iters };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: Duration::ZERO, iters };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label}: min {} | median {} | mean {}  ({sample_size} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` function running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
