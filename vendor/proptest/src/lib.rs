//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this workspace vendors a
//! minimal property-testing harness that is **API-compatible with the
//! subset of proptest 1.x the test suite uses**:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..10usize`, `1..=n`, `0.0f64..1.0`), tuple
//!   strategies, [`any::<bool>()`](any), [`Just`],
//!   [`collection::vec`] and [`array::uniform3`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its seed and values, but is
//!   not minimized;
//! * cases are generated from a deterministic per-test seed (derived from
//!   the test's module path and name), so failures reproduce across runs;
//! * `PROPTEST_CASES` in the environment overrides the case count.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, same engine as the vendored `rand` shim)
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies by the runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)` (`span > 0`).
    pub fn below(&mut self, span: u128) -> u128 {
        (self.next_u64() as u128) % span
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, which returns a new strategy that
    /// is sampled in turn (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Range strategies -----------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

// Tuple strategies -----------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);

// any::<T>() -----------------------------------------------------------------

/// Marker types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// Collections ----------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_excl: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_excl: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a size
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u128;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform3`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 3]` with every element drawn from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    /// Strategy returned by [`uniform3`].
    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the string carries the formatted message.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; it is skipped, not failed.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// True if the case was rejected rather than failed.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Executes the cases of one property test. Used by the [`proptest!`]
/// macro expansion; not meant to be called directly.
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    // deterministic per-test seed: FNV-1a over the qualified test name
    let mut seed = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rejected = 0u32;
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i as u64);
        let mut rng = TestRng::seed_from_u64(case_seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > cases * 8 {
                    panic!("{test_name}: too many prop_assume! rejections");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case {i} (seed {case_seed:#x}): {msg}"
                );
            }
        }
    }
}

/// `prop::...` paths as the real crate's prelude exposes them.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// The things `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Supports the subset of the real macro used in
/// this workspace: an optional `#![proptest_config(expr)]` header followed
/// by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(&config, name, |__rng| {
                let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), __rng) ,)+);
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (fails the case, reporting
/// seed and message, instead of panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let w = (0i32..=3).generate(&mut rng);
            assert!((0..=3).contains(&w));
            let f = (2.0f64..4.0).generate(&mut rng);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_array_shapes() {
        let mut rng = crate::TestRng::seed_from_u64(4);
        let s = prop::collection::vec(0usize..10, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = prop::collection::vec(any::<bool>(), 8);
        assert_eq!(exact.generate(&mut rng).len(), 8);
        let a = prop::array::uniform3(0.0f64..1.0).generate(&mut rng);
        assert!(a.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::seed_from_u64(5);
        let s = (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies(x in 0usize..10, (a, b) in (0i32..5, 0i32..5)) {
            prop_assert!(x < 10);
            prop_assume!(a + b < 9);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in prop::collection::vec(1u32..6, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|&x| (1..6).contains(&x)));
        }
    }
}
