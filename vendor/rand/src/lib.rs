//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of the `rand` 0.8 API surface it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which is all
//! the simulation builders need (they seed explicitly and assert physical
//! invariants, not golden bit patterns).
//!
//! This is NOT a drop-in replacement for `rand`: distributions, thread-local
//! RNGs and the `Fill`/`RngCore` trait hierarchy are intentionally absent.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a value from the "standard" distribution of the type
    /// (uniform in `[0, 1)` for floats, uniform over the domain otherwise).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same engine as [`StdRng`]; provided because the real crate exposes a
    /// distinct `SmallRng` type behind the `small_rng` feature.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&y));
            let k = r.gen_range(1usize..10);
            assert!((1..10).contains(&k));
            let j = r.gen_range(0u64..=5);
            assert!(j <= 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            buckets[(x * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} out of tolerance");
        }
    }
}
